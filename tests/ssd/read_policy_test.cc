// Unit tests for the ReadPolicy strategies in isolation (no simulator):
// each §6.2 scheme's cost rule, storage modes, and maintenance counters,
// plus the RefreshPolicy read-disturb decorator.
#include "ssd/read_policy.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"

namespace flex::ssd {
namespace {

class ReadPolicyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(4242);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    normal_ = nullptr;
  }

  // Tiny drive: 1 chip x 32 blocks x 4 pages = 128 physical pages.
  static SsdConfig config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 4;
    cfg.ftl.spec.blocks_per_chip = 32;
    cfg.ftl.spec.chips = 1;
    cfg.ftl.gc_low_watermark = 2;
    cfg.ftl.initial_pe_cycles = 3000;
    cfg.access_eval.pool_capacity_pages = 16;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 10,
                               .hashes = 2,
                               .window_accesses = 64};
    return cfg;
  }

  struct Fixture {
    explicit Fixture(SsdConfig cfg_in,
                     const faults::FaultInjector* injector = nullptr)
        : cfg(std::move(cfg_in)),
          ftl(cfg.ftl),
          policy(make_read_policy(
              cfg, cfg.latency, ladder, *normal_,
              ftl.physical_blocks() * cfg.ftl.spec.pages_per_block, ftl,
              injector)) {}

    SsdConfig cfg;
    reliability::SensingRequirement ladder;
    ftl::PageMappingFtl ftl;
    std::unique_ptr<ReadPolicy> policy;
  };

  static ReadContext read_of(std::uint64_t lpn, std::uint64_t ppn,
                             int required) {
    return {.lpn = lpn, .ppn = ppn, .required_levels = required, .now = 100};
  }

  static reliability::BerModel* normal_;
};

reliability::BerModel* ReadPolicyTest::normal_ = nullptr;

TEST_F(ReadPolicyTest, BaselineProvisionsForRatedRetention) {
  Fixture f(config(Scheme::kBaseline));
  // The fixed attempt is sized for the rated-retention worst case of the
  // pre-aged drive, independent of what this page actually needs.
  const int fixed = f.ladder.required_levels(normal_->total_ber(
      static_cast<int>(f.cfg.ftl.initial_pe_cycles),
      f.cfg.baseline_retention_spec));
  const ReadCost easy = f.policy->read_cost(read_of(1, 1, 0));
  EXPECT_EQ(easy.total(), f.cfg.latency.read_fixed(fixed));
  // A page whose requirement exceeds the provision escalates past it.
  const int top = f.ladder.steps().back().extra_levels;
  if (top > fixed) {
    const ReadCost hard = f.policy->read_cost(read_of(2, 2, top));
    EXPECT_EQ(hard.total(), f.cfg.latency.read_fixed(top));
  }
  EXPECT_EQ(f.policy->write_mode(0), ftl::PageMode::kNormal);
  EXPECT_EQ(f.policy->prefill_mode(), ftl::PageMode::kNormal);
}

TEST_F(ReadPolicyTest, ProgressiveClimbsTheLadder) {
  Fixture f(config(Scheme::kLdpcInSsd));
  for (const auto& step : f.ladder.steps()) {
    const ReadCost cost =
        f.policy->read_cost(read_of(1, 1, step.extra_levels));
    EXPECT_EQ(cost.total(),
              f.cfg.latency.read_latency({.required_levels = step.extra_levels}, f.ladder));
  }
  // Deeper requirements cost strictly more (failed attempts accumulate).
  EXPECT_LT(f.policy->read_cost(read_of(1, 1, 0)).total(),
            f.policy->read_cost(read_of(1, 1, 6)).total());
  EXPECT_EQ(f.policy->write_mode(0), ftl::PageMode::kNormal);
  EXPECT_EQ(f.policy->prefill_mode(), ftl::PageMode::kNormal);
}

TEST_F(ReadPolicyTest, LevelAdjustOnlyStoresEverythingReduced) {
  Fixture f(config(Scheme::kLevelAdjustOnly));
  EXPECT_EQ(f.policy->write_mode(7), ftl::PageMode::kReduced);
  EXPECT_EQ(f.policy->prefill_mode(), ftl::PageMode::kReduced);
}

TEST_F(ReadPolicyTest, SensingHintRemembersLastDepth) {
  auto cfg = config(Scheme::kLdpcInSsd);
  cfg.sensing_hint = true;
  Fixture f(std::move(cfg));
  // First read of the page: no hint yet, full ladder climb.
  const ReadCost cold = f.policy->read_cost(read_of(1, 9, 4));
  EXPECT_EQ(cold.total(), f.cfg.latency.read_latency({.required_levels = 4}, f.ladder));
  // Second read starts at the remembered depth: no failed attempts.
  const ReadCost warm = f.policy->read_cost(read_of(1, 9, 4));
  EXPECT_EQ(warm.total(), f.cfg.latency.read_latency({.start_levels = 4, .required_levels = 4}, f.ladder));
  EXPECT_LT(warm.total(), cold.total());
  // The hint is per physical page: another page still climbs from zero.
  const ReadCost other = f.policy->read_cost(read_of(2, 10, 4));
  EXPECT_EQ(other.total(), cold.total());
}

TEST_F(ReadPolicyTest, FlexLevelMigratesHotSoftPages) {
  Fixture f(config(Scheme::kFlexLevel));
  // Map a page so the migration has something to move.
  f.ftl.write(5, ftl::PageMode::kNormal, 0);
  // Hot (repeated) + high-sensing reads cross the HLO threshold. Hotness
  // counts the Bloom-window filters containing the page, and the window
  // rotates every window_accesses (= 64) reads — so the page must recur
  // across at least two windows before it registers as hot.
  for (int i = 0; i < 80; ++i) {
    f.policy->on_read_complete(read_of(5, f.ftl.lookup(5)->ppn, 6));
  }
  const ReadPolicyStats stats = f.policy->stats();
  EXPECT_GT(stats.migrations_to_reduced, 0u);
  EXPECT_GT(stats.pool_pages, 0u);
  EXPECT_EQ(f.ftl.lookup(5)->mode, ftl::PageMode::kReduced);
  // Pool members write back into reduced state.
  EXPECT_EQ(f.policy->write_mode(5), ftl::PageMode::kReduced);
  EXPECT_EQ(f.policy->write_mode(6), ftl::PageMode::kNormal);
  // reset_stats clears the migration counters but not the pool gauge.
  f.policy->reset_stats();
  const ReadPolicyStats after = f.policy->stats();
  EXPECT_EQ(after.migrations_to_reduced, 0u);
  EXPECT_EQ(after.pool_pages, stats.pool_pages);
}

TEST_F(ReadPolicyTest, RefreshScrubsAtThreshold) {
  auto cfg = config(Scheme::kLdpcInSsd);
  cfg.read_disturb.enabled = true;
  cfg.read_disturb.refresh_threshold = 5;
  Fixture f(std::move(cfg));
  // Fill two blocks so lpn 0's block is closed (not a write frontier).
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
    f.ftl.write(lpn, ftl::PageMode::kNormal, 0);
  }
  const std::uint64_t ppn = f.ftl.lookup(0)->ppn;
  // Below threshold: reads complete without maintenance.
  for (int i = 0; i < 4; ++i) {
    f.ftl.record_read(ppn);
    f.policy->on_read_complete(read_of(0, ppn, 0));
  }
  EXPECT_EQ(f.policy->stats().refresh_blocks, 0u);
  EXPECT_EQ(f.ftl.stats().refresh_runs, 0u);
  // The threshold-crossing read triggers the scrub.
  f.ftl.record_read(ppn);
  f.policy->on_read_complete(read_of(0, ppn, 0));
  const ReadPolicyStats stats = f.policy->stats();
  EXPECT_EQ(stats.refresh_blocks, 1u);
  EXPECT_GT(stats.refresh_page_moves, 0u);
  EXPECT_EQ(f.ftl.stats().refresh_runs, 1u);
  // The block was erased (stress gone) and the data relocated.
  EXPECT_EQ(f.ftl.block_read_count(ppn), 0u);
  EXPECT_NE(f.ftl.lookup(0)->ppn, ppn);
  EXPECT_EQ(f.ftl.lookup(0)->block_reads, 0u);
}

TEST_F(ReadPolicyTest, RefreshSkipsOpenFrontier) {
  auto cfg = config(Scheme::kLdpcInSsd);
  cfg.read_disturb.refresh_threshold = 3;
  Fixture f(std::move(cfg));
  // A single write leaves lpn 0 on the open frontier block.
  f.ftl.write(0, ftl::PageMode::kNormal, 0);
  const std::uint64_t ppn = f.ftl.lookup(0)->ppn;
  for (int i = 0; i < 10; ++i) {
    f.ftl.record_read(ppn);
    f.policy->on_read_complete(read_of(0, ppn, 0));
  }
  // Frontier blocks are never scrubbed; the stress stays on the counter.
  EXPECT_EQ(f.policy->stats().refresh_blocks, 0u);
  EXPECT_EQ(f.ftl.block_read_count(ppn), 10u);
}

TEST_F(ReadPolicyTest, RefreshForwardsInnerPolicy) {
  auto cfg = config(Scheme::kLevelAdjustOnly);
  cfg.read_disturb.refresh_threshold = 100;
  Fixture f(std::move(cfg));
  // Decoration must not change the scheme's cost rule or storage modes.
  EXPECT_EQ(f.policy->read_cost(read_of(1, 1, 2)).total(),
            f.cfg.latency.read_latency({.required_levels = 2}, f.ladder));
  EXPECT_EQ(f.policy->write_mode(0), ftl::PageMode::kReduced);
  EXPECT_EQ(f.policy->prefill_mode(), ftl::PageMode::kReduced);
}

TEST_F(ReadPolicyTest, RecoveryChargesTheDeepestReread) {
  faults::FaultConfig fault_cfg;
  fault_cfg.enabled = true;
  fault_cfg.read_retry_rescue = 1.0;
  const faults::FaultInjector injector(fault_cfg, 7);
  Fixture f(config(Scheme::kLdpcInSsd), &injector);
  Fixture plain(config(Scheme::kLdpcInSsd));
  const int top = f.ladder.steps().back().extra_levels;
  // Correctable reads cost exactly what the undecorated scheme charges.
  EXPECT_EQ(f.policy->read_cost(read_of(1, 1, 3)).total(),
            plain.policy->read_cost(read_of(1, 1, 3)).total());
  // An uncorrectable read pays the full climb plus one deepest-sensing
  // recovery re-read on top.
  ReadContext hard{.lpn = 1, .ppn = 1, .required_levels = top,
                   .correctable = false, .now = 100};
  EXPECT_EQ(f.policy->read_cost(hard).total(),
            plain.policy->read_cost(read_of(1, 1, top)).total() +
                f.cfg.latency.read_fixed(top));
  // The trace shows the recovery attempt as one extra ladder step.
  std::vector<ReadAttempt> recovery_attempts;
  f.policy->trace_attempts(hard, recovery_attempts);
  std::vector<ReadAttempt> plain_attempts;
  plain.policy->trace_attempts(read_of(1, 1, top), plain_attempts);
  EXPECT_EQ(recovery_attempts.size(), plain_attempts.size() + 1);
}

TEST_F(ReadPolicyTest, RecoveryAdjudicatesRescueOrLoss) {
  faults::FaultConfig always;
  always.enabled = true;
  always.read_retry_rescue = 1.0;
  const faults::FaultInjector rescuer(always, 7);
  Fixture f(config(Scheme::kLdpcInSsd), &rescuer);
  ReadContext hard{.lpn = 1, .ppn = 1, .required_levels = 6,
                   .correctable = false, .now = 100};
  f.policy->on_read_complete(hard);
  f.policy->on_read_complete(read_of(2, 2, 0));  // correctable: no verdict
  EXPECT_EQ(f.policy->stats().recovered_reads, 1u);
  EXPECT_EQ(f.policy->stats().data_loss_reads, 0u);

  faults::FaultConfig never;
  never.enabled = true;
  never.read_retry_rescue = 0.0;
  const faults::FaultInjector condemner(never, 7);
  Fixture g(config(Scheme::kLdpcInSsd), &condemner);
  g.policy->on_read_complete(hard);
  EXPECT_EQ(g.policy->stats().recovered_reads, 0u);
  EXPECT_EQ(g.policy->stats().data_loss_reads, 1u);
  // reset_stats clears the verdict counters like any other measurement.
  g.policy->reset_stats();
  EXPECT_EQ(g.policy->stats().data_loss_reads, 0u);
}

TEST_F(ReadPolicyTest, RecoveryForwardsInnerPolicy) {
  faults::FaultConfig fault_cfg;
  fault_cfg.enabled = true;
  const faults::FaultInjector injector(fault_cfg, 7);
  Fixture f(config(Scheme::kLevelAdjustOnly), &injector);
  // Decoration must not change the scheme's storage modes or cost rule.
  EXPECT_EQ(f.policy->write_mode(0), ftl::PageMode::kReduced);
  EXPECT_EQ(f.policy->prefill_mode(), ftl::PageMode::kReduced);
  EXPECT_EQ(f.policy->read_cost(read_of(1, 1, 2)).total(),
            f.cfg.latency.read_latency({.required_levels = 2}, f.ladder));
}

TEST_F(ReadPolicyTest, RefreshStatsResetKeepsFtlState) {
  auto cfg = config(Scheme::kLdpcInSsd);
  cfg.read_disturb.refresh_threshold = 2;
  Fixture f(std::move(cfg));
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
    f.ftl.write(lpn, ftl::PageMode::kNormal, 0);
  }
  const std::uint64_t ppn = f.ftl.lookup(0)->ppn;
  f.ftl.record_read(ppn);
  f.ftl.record_read(ppn);
  f.policy->on_read_complete(read_of(0, ppn, 0));
  ASSERT_EQ(f.policy->stats().refresh_blocks, 1u);
  // Measurement counters clear; the FTL's cumulative stats do not (the
  // simulator differences them against a prefill snapshot instead).
  f.policy->reset_stats();
  EXPECT_EQ(f.policy->stats().refresh_blocks, 0u);
  EXPECT_EQ(f.policy->stats().refresh_page_moves, 0u);
  EXPECT_EQ(f.ftl.stats().refresh_runs, 1u);
}

}  // namespace
}  // namespace flex::ssd
