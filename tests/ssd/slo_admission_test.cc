// Property test for latency-SLO read admission (qos.slo_read_admission):
// under the kFifo policy with no writes, no faults, and no read-disturb
// refresh, the admission predictor (chip backlog + worst-case service) is
// an upper bound on the actual response — so "admitted implies the
// deadline was met" holds exactly, not statistically.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

class SloAdmissionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  static SsdConfig slo_config(Duration read_deadline) {
    SsdConfig cfg;
    cfg.scheme = Scheme::kLdpcInSsd;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.over_provisioning = 0.27;
    cfg.ftl.gc_low_watermark = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.qos.enabled = true;
    cfg.qos.policy = QosPolicy::kFifo;
    cfg.qos.tenants = 1;
    cfg.qos.read_deadline = read_deadline;
    cfg.qos.slo_read_admission = true;
    return cfg;
  }

  /// Read-only overload: far past the 4-chip service rate, so queues
  /// build and unthrottled tail latency blows through any tight deadline.
  static std::vector<trace::Request> overload_reads(std::uint64_t seed) {
    trace::WorkloadParams params;
    params.name = "slo";
    params.read_fraction = 1.0;
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 60'000;
    params.requests = 20'000;
    return trace::generate(params, seed);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* SloAdmissionTest::normal_ = nullptr;
reliability::BerModel* SloAdmissionTest::reduced_ = nullptr;

TEST_F(SloAdmissionTest, AdmittedReadsAlwaysMeetTheDeadline) {
  const Duration deadline = 2 * kMillisecond;
  const auto trace = overload_reads(77);

  SsdSimulator sim(slo_config(deadline), *normal_, *reduced_);
  sim.prefill(4000);
  const SsdResults results = sim.run(trace);

  // Overload must actually have triggered rejections, or the property
  // below is vacuous.
  ASSERT_GT(results.slo_rejected, 0u);
  ASSERT_GT(results.read_response.count(), 0u);
  EXPECT_EQ(results.read_response.count() + results.slo_rejected,
            trace.size());
  EXPECT_EQ(results.admission_rejected, results.slo_rejected);
  // The property: every admitted read met the budget.
  EXPECT_LE(results.read_response.max(), to_seconds(deadline));
}

TEST_F(SloAdmissionTest, WithoutAdmissionTheDeadlineIsMissed) {
  // Control arm: the same overload with admission off produces responses
  // past the deadline — the property above is not vacuously true.
  const Duration deadline = 2 * kMillisecond;
  SsdConfig cfg = slo_config(deadline);
  cfg.qos.slo_read_admission = false;
  SsdSimulator sim(cfg, *normal_, *reduced_);
  sim.prefill(4000);
  const SsdResults results = sim.run(overload_reads(77));
  EXPECT_EQ(results.slo_rejected, 0u);
  EXPECT_GT(results.read_response.max(), to_seconds(deadline));
}

TEST_F(SloAdmissionTest, TighterDeadlinesRejectMore) {
  const auto trace = overload_reads(5);
  std::uint64_t previous = 0;
  bool first = true;
  for (const Duration deadline :
       {8 * kMillisecond, 2 * kMillisecond, 500 * kMicrosecond}) {
    SsdSimulator sim(slo_config(deadline), *normal_, *reduced_);
    sim.prefill(4000);
    const SsdResults results = sim.run(trace);
    if (!first) EXPECT_GE(results.slo_rejected, previous);
    previous = results.slo_rejected;
    first = false;
    EXPECT_LE(results.read_response.max(), to_seconds(deadline));
  }
}

TEST_F(SloAdmissionTest, ValidateRejectsArmedKnobWithQosDisabled) {
  SsdConfig cfg = slo_config(2 * kMillisecond);
  cfg.qos.enabled = false;
  EXPECT_FALSE(cfg.Validate().ok());
}

}  // namespace
}  // namespace flex::ssd
