// Cross-cutting simulator properties: determinism, scheme-invariant
// accounting, and the age-model semantics.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

class SimulatorProperty : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(77);
    const reliability::BerEngine::Config mc{
        .wordlines = 32, .bitlines = 128, .rounds = 2, .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  static SsdConfig config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.ftl.gc_low_watermark = 4;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1000;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  static std::vector<trace::Request> trace_for(double read_fraction) {
    trace::WorkloadParams params;
    params.name = "prop";
    params.read_fraction = read_fraction;
    params.zipf_theta = 0.9;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.5;
    params.max_request_pages = 8;
    params.iops = 1500;
    params.requests = 15'000;
    return trace::generate(params, 321);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* SimulatorProperty::normal_ = nullptr;
reliability::BerModel* SimulatorProperty::reduced_ = nullptr;

TEST_F(SimulatorProperty, SameSeedSameResults) {
  const auto trace = trace_for(0.8);
  auto run_once = [&] {
    SsdSimulator sim(config(Scheme::kFlexLevel), *normal_, *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  };
  const SsdResults a = run_once();
  const SsdResults b = run_once();
  EXPECT_DOUBLE_EQ(a.all_response.mean(), b.all_response.mean());
  EXPECT_DOUBLE_EQ(a.read_response.max(), b.read_response.max());
  EXPECT_EQ(a.migrations_to_reduced, b.migrations_to_reduced);
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_EQ(a.sensing_level_reads, b.sensing_level_reads);
}

TEST_F(SimulatorProperty, DifferentSeedsDifferentPrefillAges) {
  const auto trace = trace_for(0.95);
  auto cfg = config(Scheme::kLdpcInSsd);
  SsdSimulator a(cfg, *normal_, *reduced_);
  cfg.seed = 0xD1FF;
  SsdSimulator b(cfg, *normal_, *reduced_);
  a.prefill(4000);
  b.prefill(4000);
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  // Age draws differ, so the sensing-level mix cannot be identical.
  EXPECT_NE(ra.sensing_level_reads, rb.sensing_level_reads);
}

TEST_F(SimulatorProperty, HostVisibleCountsAreSchemeInvariant) {
  // Scheduling policy must not change what the host asked for: the number
  // of measured requests and the read/write split are identical across
  // schemes.
  const auto trace = trace_for(0.7);
  std::uint64_t expected_reads = 0;
  for (const Scheme scheme :
       {Scheme::kBaseline, Scheme::kLdpcInSsd, Scheme::kLevelAdjustOnly,
        Scheme::kFlexLevel}) {
    SsdSimulator sim(config(scheme), *normal_, *reduced_);
    sim.prefill(4000);
    const auto results = sim.run(trace);
    EXPECT_EQ(results.all_response.count(), trace.size());
    if (expected_reads == 0) {
      expected_reads = results.read_response.count();
    } else {
      EXPECT_EQ(results.read_response.count(), expected_reads)
          << scheme_name(scheme);
    }
  }
}

TEST_F(SimulatorProperty, StaticAgeIgnoresRewrites) {
  // Under kStaticPerLba, rewriting a page must not lower its sensing
  // requirement; under kPhysical it must.
  const auto trace = trace_for(0.5);  // write-heavy: lots of rewrites
  auto run_model = [&](AgeModel model) {
    auto cfg = config(Scheme::kLdpcInSsd);
    cfg.age_model = model;
    cfg.min_prefill_age = kWeek;  // everything needs soft sensing at 6000
    cfg.max_prefill_age = kMonth;
    SsdSimulator sim(cfg, *normal_, *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  };
  const auto fixed = run_model(AgeModel::kStaticPerLba);
  const auto physical = run_model(AgeModel::kPhysical);
  // Physical ages: rewritten pages read hard; static: they stay soft.
  EXPECT_GT(physical.sensing_level_reads[0], fixed.sensing_level_reads[0]);
  EXPECT_GT(fixed.read_response.mean(), physical.read_response.mean());
}

TEST_F(SimulatorProperty, HintNeverChangesSensingRequirements) {
  // The hint is a latency optimization: the *requirement* histogram is a
  // property of the data, not of the retry policy.
  const auto trace = trace_for(0.9);
  auto run_hint = [&](bool hint) {
    auto cfg = config(Scheme::kLdpcInSsd);
    cfg.sensing_hint = hint;
    SsdSimulator sim(cfg, *normal_, *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  };
  const auto plain = run_hint(false);
  const auto hinted = run_hint(true);
  EXPECT_EQ(plain.sensing_level_reads, hinted.sensing_level_reads);
}

TEST_F(SimulatorProperty, ResetMeasurementsEqualsAccumulatedDelta) {
  // reset_measurements() must only clear the measurement window, never
  // simulator state: a warmup/measure split on one simulator must report
  // exactly what an identical simulator accumulating both passes reports
  // as the difference. FlexLevel with disturb + refresh covers every
  // counter class (response stats, FTL deltas, policy maintenance).
  auto cfg = config(Scheme::kFlexLevel);
  cfg.read_disturb.enabled = true;
  cfg.read_disturb.model.vth_shift_per_read = 1.0e-4;
  cfg.read_disturb.refresh_threshold = 300;
  const auto trace = trace_for(0.9);
  const auto split =
      trace.begin() + static_cast<std::ptrdiff_t>(trace.size() / 2);
  const std::vector<trace::Request> warmup{trace.begin(), split};
  const std::vector<trace::Request> measured{split, trace.end()};

  SsdSimulator a(cfg, *normal_, *reduced_);
  a.prefill(4000);
  a.run(warmup);
  a.reset_measurements();
  const SsdResults ra = a.run(measured);

  SsdSimulator b(cfg, *normal_, *reduced_);
  b.prefill(4000);
  const SsdResults rb1 = b.run(warmup);
  const SsdResults rb2 = b.run(measured);  // accumulates, no reset

  // Host-visible counts and response sums.
  EXPECT_EQ(ra.all_response.count(),
            rb2.all_response.count() - rb1.all_response.count());
  const double sum_a = ra.read_response.mean() *
                       static_cast<double>(ra.read_response.count());
  const double sum_b =
      rb2.read_response.mean() *
          static_cast<double>(rb2.read_response.count()) -
      rb1.read_response.mean() *
          static_cast<double>(rb1.read_response.count());
  EXPECT_NEAR(sum_a, sum_b, 1e-9 * std::abs(sum_b));

  // Counters: the reset window equals the accumulated difference.
  EXPECT_EQ(ra.buffer_hits, rb2.buffer_hits - rb1.buffer_hits);
  EXPECT_EQ(ra.uncorrectable_reads,
            rb2.uncorrectable_reads - rb1.uncorrectable_reads);
  EXPECT_EQ(ra.migrations_to_reduced,
            rb2.migrations_to_reduced - rb1.migrations_to_reduced);
  EXPECT_EQ(ra.migrations_to_normal,
            rb2.migrations_to_normal - rb1.migrations_to_normal);
  EXPECT_EQ(ra.refresh_blocks, rb2.refresh_blocks - rb1.refresh_blocks);
  EXPECT_EQ(ra.refresh_page_moves,
            rb2.refresh_page_moves - rb1.refresh_page_moves);
  EXPECT_EQ(ra.ftl.nand_writes, rb2.ftl.nand_writes - rb1.ftl.nand_writes);
  EXPECT_EQ(ra.ftl.nand_erases, rb2.ftl.nand_erases - rb1.ftl.nand_erases);
  EXPECT_EQ(ra.ftl.gc_runs, rb2.ftl.gc_runs - rb1.ftl.gc_runs);
  EXPECT_EQ(ra.ftl.refresh_runs,
            rb2.ftl.refresh_runs - rb1.ftl.refresh_runs);
  EXPECT_EQ(ra.ftl.refresh_page_moves,
            rb2.ftl.refresh_page_moves - rb1.ftl.refresh_page_moves);
  ASSERT_EQ(ra.sensing_level_reads.size(), rb2.sensing_level_reads.size());
  for (std::size_t l = 0; l < ra.sensing_level_reads.size(); ++l) {
    EXPECT_EQ(ra.sensing_level_reads[l],
              rb2.sensing_level_reads[l] - rb1.sensing_level_reads[l])
        << l;
  }

  // Gauges are NOT windowed: the pool occupancy reflects the simulator's
  // full history on both sides, identically.
  EXPECT_EQ(ra.pool_pages, rb2.pool_pages);
}

TEST_F(SimulatorProperty, ResetClearsCountersButNotLearnedState) {
  // After reset_measurements() the counters start from zero, but learned
  // state (AccessEval pool and hotness, sensing hints, block wear) must
  // survive — that is the entire point of a warmup pass.
  auto cfg = config(Scheme::kFlexLevel);
  cfg.sensing_hint = true;
  const auto trace = trace_for(0.95);
  const auto split =
      trace.begin() + static_cast<std::ptrdiff_t>(trace.size() / 2);
  SsdSimulator sim(cfg, *normal_, *reduced_);
  sim.prefill(4000);
  const SsdResults warm = sim.run({trace.begin(), split});
  ASSERT_GT(warm.migrations_to_reduced, 0u);
  ASSERT_GT(warm.pool_pages, 0u);
  sim.reset_measurements();
  // The second half revisits the same Zipf-hot set: the pool carries over
  // (gauge), so the already-migrated pages need no migrating again
  // (counter restarts and stays low).
  const SsdResults steady = sim.run({split, trace.end()});
  EXPECT_GE(steady.pool_pages, warm.pool_pages);
  EXPECT_LT(steady.migrations_to_reduced, warm.migrations_to_reduced);
}

TEST_F(SimulatorProperty, FaultsOnIsDeterministic) {
  // Fault decisions are stateless hashes of (seed, kind, op identity), so a
  // faulty run is exactly as reproducible as a clean one.
  auto cfg = config(Scheme::kFlexLevel);
  cfg.faults.enabled = true;
  cfg.faults.program_fail_rate = 1e-3;
  cfg.faults.erase_fail_rate = 1e-2;
  cfg.faults.grown_defect_rate = 1e-2;
  const auto trace = trace_for(0.5);  // write-heavy: programs and erases
  auto run_once = [&] {
    SsdSimulator sim(cfg, *normal_, *reduced_);
    sim.prefill(4000);
    return sim.run(trace);
  };
  const SsdResults a = run_once();
  const SsdResults b = run_once();
  ASSERT_GT(a.ftl.program_fails, 0u);
  ASSERT_GT(a.ftl.erase_fails, 0u);
  ASSERT_GT(a.ftl.grown_defects, 0u);
  EXPECT_EQ(a.ftl.program_fails, b.ftl.program_fails);
  EXPECT_EQ(a.ftl.erase_fails, b.ftl.erase_fails);
  EXPECT_EQ(a.ftl.grown_defects, b.ftl.grown_defects);
  EXPECT_EQ(a.retired_blocks, b.retired_blocks);
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_DOUBLE_EQ(a.all_response.mean(), b.all_response.mean());
}

TEST_F(SimulatorProperty, FaultyDriveStillServicesEveryRequest) {
  // Graceful degradation: with all three fault kinds firing, every host
  // request still completes, and the retirement ledger balances (the gauge
  // also counts blocks retired during prefill, hence GE).
  auto cfg = config(Scheme::kFlexLevel);
  cfg.faults.enabled = true;
  cfg.faults.program_fail_rate = 1e-3;
  cfg.faults.erase_fail_rate = 1e-2;
  cfg.faults.grown_defect_rate = 1e-2;
  const auto trace = trace_for(0.5);
  SsdSimulator sim(cfg, *normal_, *reduced_);
  sim.prefill(4000);
  const SsdResults results = sim.run(trace);
  EXPECT_EQ(results.all_response.count(), trace.size());
  EXPECT_EQ(results.unmapped_reads, 0u);
  EXPECT_GE(results.retired_blocks, results.ftl.program_fails +
                                        results.ftl.erase_fails +
                                        results.ftl.grown_defects);
  // Every retirement shrinks the ReducedCell pool budget (by
  // pages_per_block * f/(1-f) pages, floored at one page).
  EXPECT_LT(results.pool_capacity_pages, cfg.access_eval.pool_capacity_pages);
  EXPECT_GE(results.pool_capacity_pages, 1u);
}

TEST_F(SimulatorProperty, FaultsDisabledAreFree) {
  // enabled=false must short-circuit everything: nonzero configured rates
  // change no observable output relative to a default config.
  const auto trace = trace_for(0.7);
  auto cfg = config(Scheme::kLdpcInSsd);
  SsdSimulator plain(cfg, *normal_, *reduced_);
  cfg.faults.program_fail_rate = 0.5;
  cfg.faults.erase_fail_rate = 0.5;
  cfg.faults.grown_defect_rate = 0.5;  // armed but not enabled
  SsdSimulator armed(cfg, *normal_, *reduced_);
  plain.prefill(4000);
  armed.prefill(4000);
  const SsdResults a = plain.run(trace);
  const SsdResults b = armed.run(trace);
  EXPECT_DOUBLE_EQ(a.all_response.mean(), b.all_response.mean());
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_EQ(b.retired_blocks, 0u);
  EXPECT_EQ(b.ftl.program_fails, 0u);
}

TEST_F(SimulatorProperty, BuilderValidatesBeforeConstruction) {
  auto bad = config(Scheme::kLdpcInSsd);
  bad.ftl.over_provisioning = 0.0;
  const auto rejected =
      SsdSimulator::Builder(*normal_, *reduced_).config(bad).Build();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(rejected.status().message().find("over_provisioning"),
            std::string::npos);

  // The refresh-without-disturb footgun is a config error, not a silent
  // no-op.
  auto footgun = config(Scheme::kLdpcInSsd);
  footgun.read_disturb.refresh_threshold = 100;  // enabled stays false
  const auto refused =
      SsdSimulator::Builder(*normal_, *reduced_).config(footgun).Build();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  auto bad_rate = config(Scheme::kLdpcInSsd);
  bad_rate.faults.enabled = true;
  bad_rate.faults.program_fail_rate = 1.5;
  EXPECT_FALSE(
      SsdSimulator::Builder(*normal_, *reduced_).config(bad_rate).Build().ok());
}

TEST_F(SimulatorProperty, BuilderRunMatchesLegacyConstructor) {
  // The Builder is a validated front door to the same simulator: a built
  // instance driven through run_segment()/results() reproduces the legacy
  // constructor + run() path bit for bit.
  const auto trace = trace_for(0.8);
  const auto cfg = config(Scheme::kFlexLevel);

  SsdSimulator legacy(cfg, *normal_, *reduced_);
  legacy.prefill(4000);
  const SsdResults expected = legacy.run(trace);

  auto built = SsdSimulator::Builder(*normal_, *reduced_).config(cfg).Build();
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  SsdSimulator& sim = **built;
  sim.prefill(4000);
  sim.run_segment(trace);
  const SsdResults& actual = sim.results();
  EXPECT_DOUBLE_EQ(actual.all_response.mean(), expected.all_response.mean());
  EXPECT_EQ(actual.ftl.nand_writes, expected.ftl.nand_writes);
  EXPECT_EQ(actual.read_response.count(), expected.read_response.count());
}

TEST_F(SimulatorProperty, PercentilesBracketTheMean) {
  const auto trace = trace_for(0.9);
  SsdSimulator sim(config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(trace);
  const double p50 = results.read_latency_hist.quantile(0.5);
  const double p99 = results.read_latency_hist.quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_GE(results.read_response.max() + 1e-9, p99);
}

}  // namespace
}  // namespace flex::ssd
