// Power-loss crash consistency, end to end: deterministic crash-point
// injection in the simulator's event loop, OOB mount/recovery, and the
// durability invariants the CrashHarness checks:
//   1. no acknowledged-durable write is lost,
//   2. no LPN is double-mapped after recovery,
//   3. the retired-block ledger survives the crash,
// plus the configuration guardrails (Validate) and the durability
// policies' ack-time accounting (FUA, flush barriers).
#include "ssd/crash_harness.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

class CrashConsistencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  // Small drive: 4 chips x 64 blocks x 32 pages = 8192 physical pages.
  static SsdConfig small_config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.over_provisioning = 0.27;
    cfg.ftl.gc_low_watermark = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  /// small_config with crash injection armed: program/erase faults on (so
  /// retirement exercises invariant 3), flush-barrier durability, and a
  /// crash rate that lands the power loss inside a 5k-request trace.
  static SsdConfig crash_config(Scheme scheme) {
    SsdConfig cfg = small_config(scheme);
    cfg.faults.enabled = true;
    cfg.faults.program_fail_rate = 0.002;
    cfg.faults.erase_fail_rate = 0.002;
    cfg.faults.crash_enabled = true;
    cfg.faults.crash_rate = 1.0 / 4096.0;
    cfg.durability.policy = DurabilityPolicy::kFlushBarrier;
    cfg.durability.flush_barrier_interval = 64;
    return cfg;
  }

  static std::vector<trace::Request> small_trace(std::uint64_t requests,
                                                 std::uint64_t seed) {
    trace::WorkloadParams params;
    params.name = "crash";
    params.read_fraction = 0.6;  // write-heavy: more durability at stake
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = requests;
    return trace::generate(params, seed);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* CrashConsistencyTest::normal_ = nullptr;
reliability::BerModel* CrashConsistencyTest::reduced_ = nullptr;

TEST_F(CrashConsistencyTest, ValidateRejectsCrashWithoutFaultInjection) {
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.faults.crash_enabled = true;  // faults.enabled stays false
  cfg.durability.policy = DurabilityPolicy::kFua;
  const Status status = cfg.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("crash_enabled"), std::string::npos);
}

TEST_F(CrashConsistencyTest, ValidateRejectsCrashWithWriteBackAcks) {
  // The durability footgun: crash injection with pure write-back would
  // acknowledge writes that the crash then silently loses.
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.faults.enabled = true;
  cfg.faults.crash_enabled = true;  // durability stays kWriteBack
  const Status status = cfg.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kWriteBack"), std::string::npos);
  cfg.durability.policy = DurabilityPolicy::kFlushBarrier;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST_F(CrashConsistencyTest, ValidateRejectsZeroBarrierInterval) {
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.durability.policy = DurabilityPolicy::kFlushBarrier;
  cfg.durability.flush_barrier_interval = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST_F(CrashConsistencyTest, FuaAcksOnlyDurableWrites) {
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.durability.policy = DurabilityPolicy::kFua;
  SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
  sim.prefill(4000);
  sim.run_segment(small_trace(2000, 11));
  // Force-unit-access: every acknowledged page was programmed first, so
  // the two counters track exactly and nothing dirty rides in DRAM.
  EXPECT_GT(sim.results().writes_acked, 0u);
  EXPECT_EQ(sim.results().writes_acked, sim.results().writes_durable);
  EXPECT_EQ(sim.results().dirty_buffer_pages, 0u);
}

TEST_F(CrashConsistencyTest, WriteBackAcksMoreThanItPrograms) {
  // The seed behaviour: buffered-but-unprogrammed writes are acked and
  // counted as such — but never as durable.
  SsdSimulator sim(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  sim.prefill(4000);
  sim.run_segment(small_trace(2000, 11));
  EXPECT_GT(sim.results().writes_acked, sim.results().writes_durable);
  EXPECT_GT(sim.results().dirty_buffer_pages, 0u);
}

TEST_F(CrashConsistencyTest, FlushBarrierBoundsTheDirtyWindow) {
  SsdConfig cfg = small_config(Scheme::kLdpcInSsd);
  cfg.durability.policy = DurabilityPolicy::kFlushBarrier;
  cfg.durability.flush_barrier_interval = 32;
  SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
  sim.prefill(4000);
  sim.run_segment(small_trace(2000, 11));
  EXPECT_LT(sim.results().dirty_buffer_pages, 32u);
  // An explicit barrier (fsync) leaves nothing dirty at all.
  sim.flush_barrier();
  sim.run_segment({});
  EXPECT_EQ(sim.results().dirty_buffer_pages, 0u);
}

TEST_F(CrashConsistencyTest, CrashSweepHoldsEveryInvariant) {
  // The tentpole check, in miniature (the bench sweeps 256+ points):
  // several crash salts per scheme, every verdict must be clean.
  const auto trace = small_trace(5000, 2024);
  for (const Scheme scheme : {Scheme::kLdpcInSsd, Scheme::kFlexLevel}) {
    int mid_trace_crashes = 0;
    for (std::uint64_t salt = 0; salt < 6; ++salt) {
      const CrashVerdict verdict = run_crash_point(
          crash_config(scheme), trace, salt, 4000, *normal_, *reduced_);
      EXPECT_EQ(verdict.lost_acknowledged, 0u)
          << scheme_name(scheme) << " salt " << salt;
      EXPECT_TRUE(verdict.double_mapped.empty())
          << scheme_name(scheme) << " salt " << salt;
      EXPECT_TRUE(verdict.retired_ledger_ok)
          << scheme_name(scheme) << " salt " << salt;
      EXPECT_TRUE(verdict.consistent)
          << scheme_name(scheme) << " salt " << salt << ": "
          << verdict.consistency_message;
      EXPECT_GT(verdict.report.mappings_recovered, 0u);
      EXPECT_GT(verdict.mount_time, 0);
      if (verdict.crashed_mid_trace) ++mid_trace_crashes;
    }
    // The crash rate is tuned to land inside this trace: if no salt ever
    // fired, the sweep silently degraded to end-of-trace cord pulls only.
    EXPECT_GT(mid_trace_crashes, 0) << scheme_name(scheme);
  }
}

TEST_F(CrashConsistencyTest, CrashPointIsDeterministic) {
  const auto trace = small_trace(5000, 99);
  const CrashVerdict a = run_crash_point(crash_config(Scheme::kFlexLevel),
                                         trace, 3, 4000, *normal_, *reduced_);
  const CrashVerdict b = run_crash_point(crash_config(Scheme::kFlexLevel),
                                         trace, 3, 4000, *normal_, *reduced_);
  EXPECT_EQ(a.crashed_mid_trace, b.crashed_mid_trace);
  EXPECT_EQ(a.crash_ordinal, b.crash_ordinal);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.writes_durable, b.writes_durable);
  EXPECT_EQ(a.dirty_lost, b.dirty_lost);
  EXPECT_EQ(a.report.pages_scanned, b.report.pages_scanned);
  EXPECT_EQ(a.report.mappings_recovered, b.report.mappings_recovered);
  EXPECT_EQ(a.report.stale_records, b.report.stale_records);
  EXPECT_EQ(a.report.reduced_lpns, b.report.reduced_lpns);
}

TEST_F(CrashConsistencyTest, CrashOffRunsAreUnperturbed) {
  // Arming the machinery must cost nothing when off: a run with crash
  // support compiled in but crash_enabled=false matches a plain run of
  // the same seed, field for field.
  const auto trace = small_trace(3000, 5);
  SsdSimulator plain(small_config(Scheme::kFlexLevel), *normal_, *reduced_);
  plain.prefill(4000);
  const SsdResults a = plain.run(trace);

  SsdConfig cfg = small_config(Scheme::kFlexLevel);
  cfg.faults.enabled = true;  // injector constructed, crash stays off
  SsdSimulator armed(std::move(cfg), *normal_, *reduced_);
  armed.prefill(4000);
  const SsdResults b = armed.run(trace);

  EXPECT_EQ(a.read_response.mean(), b.read_response.mean());
  EXPECT_EQ(a.write_response.mean(), b.write_response.mean());
  EXPECT_EQ(a.ftl.nand_writes, b.ftl.nand_writes);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.writes_durable, b.writes_durable);
  EXPECT_EQ(a.crashes, 0u);
  EXPECT_EQ(b.crashes, 0u);
}

TEST_F(CrashConsistencyTest, MountIsIdempotentIncludingMetrics) {
  // mount -> workload -> crash -> mount -> mount: the second mount must
  // reproduce the first byte for byte — metrics snapshot and L2P dump —
  // because a drive can lose power again right after recovering.
  telemetry::Telemetry telemetry;
  SsdConfig cfg = crash_config(Scheme::kFlexLevel);
  SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
  sim.prefill(4000);
  sim.mount();  // clean pre-workload mount is legal
  sim.run_segment(small_trace(5000, 77));
  if (!sim.crashed()) sim.power_loss();

  sim.attach_telemetry(&telemetry);
  sim.mount();
  const std::string metrics_first = telemetry.metrics.snapshot().to_jsonl();
  const std::vector<std::uint64_t> l2p_first = sim.ftl().l2p_dump();

  sim.power_loss();
  telemetry.metrics.zero();  // crash accounted; compare the mounts alone
  sim.mount();
  EXPECT_EQ(telemetry.metrics.snapshot().to_jsonl(), metrics_first);
  EXPECT_EQ(sim.ftl().l2p_dump(), l2p_first);
  EXPECT_TRUE(sim.ftl().check_consistency().ok());
}

}  // namespace
}  // namespace flex::ssd
