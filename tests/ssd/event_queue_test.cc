#include "ssd/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace flex::ssd {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  // 30 first, then 10, then 20: 10 and 20 are behind the lane back so
  // they take the heap; the pop must still interleave by time.
  queue.schedule(30, [&order](SimTime) { order.push_back(3); });
  queue.schedule(10, [&order](SimTime) { order.push_back(1); });
  queue.schedule(20, [&order](SimTime) { order.push_back(2); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30);
  EXPECT_EQ(queue.fired(), 3u);
}

TEST(EventQueueTest, SameTimestampFiresInScheduleOrder) {
  // The ordinal tie-break contract: equal `when` resolves by scheduling
  // order, across lanes. Events 0..3 are monotone (FIFO lane); event 4
  // arrives after a later event exists, forcing it through the heap —
  // its ordinal still slots it after event 2, before nothing earlier.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(5, [&order](SimTime) { order.push_back(0); });
  queue.schedule(5, [&order](SimTime) { order.push_back(1); });
  queue.schedule(5, [&order](SimTime) { order.push_back(2); });
  queue.schedule(9, [&order](SimTime) { order.push_back(3); });
  queue.schedule(5, [&order](SimTime) { order.push_back(4); });  // heap lane
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 3}));
}

TEST(EventQueueTest, MixedLaneInterleaving) {
  EventQueue queue;
  std::vector<SimTime> fired_at;
  for (const SimTime when : {10, 20, 30, 40}) {  // FIFO lane
    queue.schedule(when, [&fired_at](SimTime now) { fired_at.push_back(now); });
  }
  for (const SimTime when : {15, 35, 5}) {  // heap lane (out of order)
    queue.schedule(when, [&fired_at](SimTime now) { fired_at.push_back(now); });
  }
  queue.run_all();
  EXPECT_EQ(fired_at, (std::vector<SimTime>{5, 10, 15, 20, 30, 35, 40}));
}

TEST(EventQueueTest, CallbackReceivesItsOwnDeadline) {
  EventQueue queue;
  SimTime seen = -1;
  queue.schedule(1234, [&seen](SimTime now) { seen = now; });
  EXPECT_TRUE(queue.run_next());
  EXPECT_EQ(seen, 1234);
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueueTest, ReentrantScheduleFromCallback) {
  // The chip-service pattern: a firing arrival schedules its completion.
  EventQueue queue;
  std::vector<SimTime> fired_at;
  for (int i = 1; i <= 3; ++i) {
    queue.schedule(i * 10, [&queue, &fired_at](SimTime now) {
      fired_at.push_back(now);
      queue.schedule(now + 5, [&fired_at](SimTime t) { fired_at.push_back(t); });
    });
  }
  queue.run_all();
  EXPECT_EQ(fired_at, (std::vector<SimTime>{10, 15, 20, 25, 30, 35}));
  EXPECT_EQ(queue.fired(), 6u);
}

TEST(EventQueueTest, CancelHeapEvent) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&order](SimTime) { order.push_back(3); });
  const EventQueue::EventId id =
      queue.schedule(10, [&order](SimTime) { order.push_back(1); });
  queue.schedule(20, [&order](SimTime) { order.push_back(2); });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // stale handle
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventQueueTest, CancelFifoEventTombstones) {
  // Cancelling inside the sorted lane must not disturb its order; the
  // tombstone is skipped when it reaches the head.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&order](SimTime) { order.push_back(1); });
  const EventQueue::EventId mid =
      queue.schedule(20, [&order](SimTime) { order.push_back(2); });
  queue.schedule(30, [&order](SimTime) { order.push_back(3); });
  EXPECT_EQ(queue.pending(), 3u);
  EXPECT_TRUE(queue.cancel(mid));
  EXPECT_EQ(queue.pending(), 2u);
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(queue.fired(), 2u);  // cancelled events never count as fired
}

TEST(EventQueueTest, CancelFifoHeadSkipsToNextLive) {
  EventQueue queue;
  std::vector<int> order;
  const EventQueue::EventId head =
      queue.schedule(10, [&order](SimTime) { order.push_back(1); });
  queue.schedule(20, [&order](SimTime) { order.push_back(2); });
  EXPECT_TRUE(queue.cancel(head));
  EXPECT_TRUE(queue.run_next());
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, HandleGoesStaleAfterFiring) {
  EventQueue queue;
  const EventQueue::EventId id = queue.schedule(10, [](SimTime) {});
  queue.run_all();
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueueTest, SlabSlotsReusedAfterCancel) {
  // Cancelled slots return to the free stack: scheduling the same number
  // again must not grow the slab.
  EventQueue queue;
  std::vector<EventQueue::EventId> ids;
  for (SimTime t = 1; t <= 100; ++t) {
    ids.push_back(queue.schedule(t, [](SimTime) {}));
  }
  const std::size_t high_water = queue.slab_slots();
  EXPECT_EQ(high_water, 100u);
  for (const auto& id : ids) EXPECT_TRUE(queue.cancel(id));
  EXPECT_TRUE(queue.empty());
  for (SimTime t = 101; t <= 200; ++t) queue.schedule(t, [](SimTime) {});
  EXPECT_EQ(queue.slab_slots(), high_water);  // no new allocations
  queue.run_all();
  EXPECT_EQ(queue.fired(), 100u);
}

TEST(EventQueueTest, SlabStopsGrowingInSteadyState) {
  EventQueue queue;
  for (int round = 0; round < 3; ++round) {
    const SimTime base = queue.now();
    for (SimTime i = 1; i <= 50; ++i) queue.schedule(base + i, [](SimTime) {});
    queue.run_all();
    EXPECT_EQ(queue.slab_slots(), 50u) << round;
  }
}

TEST(EventQueueTest, DropPendingDiscardsBothLanes) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&order](SimTime) { order.push_back(1); });
  EXPECT_TRUE(queue.run_next());
  // Pending mix: two FIFO entries (one later cancelled), one heap entry.
  queue.schedule(20, [&order](SimTime) { order.push_back(2); });
  const EventQueue::EventId doomed =
      queue.schedule(30, [&order](SimTime) { order.push_back(3); });
  queue.schedule(15, [&order](SimTime) { order.push_back(4); });
  EXPECT_TRUE(queue.cancel(doomed));
  EXPECT_EQ(queue.pending(), 2u);

  EXPECT_EQ(queue.drop_pending(), 2u);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.run_next());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(queue.now(), 10);    // clock survives the power loss
  EXPECT_EQ(queue.fired(), 1u);  // dropped events never fire

  // Ordinals are not reset: same-instant events scheduled after the drop
  // still fire in scheduling order.
  queue.schedule(50, [&order](SimTime) { order.push_back(5); });
  queue.schedule(50, [&order](SimTime) { order.push_back(6); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 5, 6}));
}

TEST(EventQueueTest, PendingCountsBothLanes) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.schedule(10, [](SimTime) {});
  queue.schedule(20, [](SimTime) {});  // FIFO lane
  queue.schedule(5, [](SimTime) {});   // heap lane
  EXPECT_EQ(queue.pending(), 3u);
  EXPECT_FALSE(queue.empty());
  queue.run_all();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace flex::ssd
