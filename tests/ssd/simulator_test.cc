#include "ssd/simulator.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "trace/workloads.h"

namespace flex::ssd {
namespace {

// Shared BerModels (expensive to construct) for all simulator tests.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    const reliability::BerEngine::Config mc{.wordlines = 32,
                                            .bitlines = 128,
                                            .rounds = 2,
                                            .coupling = {}};
    static const reliability::GrayMapper gray;
    static const flexlevel::ReduceCodeMapper reduce;
    normal_ = new reliability::BerModel(nand::LevelConfig::baseline_mlc(),
                                        gray, reliability::RetentionModel{},
                                        mc, rng);
    reduced_ = new reliability::BerModel(
        flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), reduce,
        reliability::RetentionModel{}, mc, rng);
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete reduced_;
    normal_ = nullptr;
    reduced_ = nullptr;
  }

  // Small drive: 4 chips x 64 blocks x 32 pages = 8192 physical pages.
  static SsdConfig small_config(Scheme scheme) {
    SsdConfig cfg;
    cfg.scheme = scheme;
    cfg.ftl.spec.page_size_bytes = 4096;
    cfg.ftl.spec.pages_per_block = 32;
    cfg.ftl.spec.blocks_per_chip = 64;
    cfg.ftl.spec.chips = 4;
    cfg.ftl.over_provisioning = 0.27;
    cfg.ftl.gc_low_watermark = 4;
    cfg.ftl.initial_pe_cycles = 6000;
    cfg.min_prefill_age = kDay;
    cfg.max_prefill_age = kMonth;
    cfg.write_buffer_pages = 64;
    cfg.write_buffer_flush_batch = 8;
    cfg.access_eval.pool_capacity_pages = 1024;
    cfg.access_eval.hotness = {.filter_count = 4,
                               .bits_per_filter = 1 << 14,
                               .hashes = 2,
                               .window_accesses = 512};
    return cfg;
  }

  static std::vector<trace::Request> small_trace(double read_fraction,
                                                 std::uint64_t seed) {
    trace::WorkloadParams params;
    params.name = "test";
    params.read_fraction = read_fraction;
    params.zipf_theta = 1.0;
    params.footprint_pages = 4000;
    params.mean_request_pages = 1.2;
    params.max_request_pages = 4;
    params.iops = 1500;
    params.requests = 20'000;
    return trace::generate(params, seed);
  }

  static reliability::BerModel* normal_;
  static reliability::BerModel* reduced_;
};

reliability::BerModel* SimulatorTest::normal_ = nullptr;
reliability::BerModel* SimulatorTest::reduced_ = nullptr;

TEST_F(SimulatorTest, RunsEverySchemeToCompletion) {
  for (const Scheme scheme : {Scheme::kBaseline, Scheme::kLdpcInSsd,
                              Scheme::kLevelAdjustOnly, Scheme::kFlexLevel}) {
    SsdSimulator sim(small_config(scheme), *normal_, *reduced_);
    sim.prefill(4000);
    const SsdResults results = sim.run(small_trace(0.7, 42));
    EXPECT_EQ(results.all_response.count(), 20'000u) << scheme_name(scheme);
    EXPECT_GT(results.read_response.mean(), 0.0) << scheme_name(scheme);
  }
}

TEST_F(SimulatorTest, BaselineSlowerThanProgressive) {
  SsdSimulator base(small_config(Scheme::kBaseline), *normal_, *reduced_);
  base.prefill(4000);
  const auto base_results = base.run(small_trace(0.9, 7));

  SsdSimulator prog(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  prog.prefill(4000);
  const auto prog_results = prog.run(small_trace(0.9, 7));

  EXPECT_GT(base_results.read_response.mean(),
            prog_results.read_response.mean());
}

TEST_F(SimulatorTest, FlexLevelMigratesHotSoftData) {
  SsdSimulator sim(small_config(Scheme::kFlexLevel), *normal_, *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(small_trace(0.9, 11));
  EXPECT_GT(results.migrations_to_reduced, 0u);
  EXPECT_GT(sim.ftl().reduced_blocks(), 0u);
}

TEST_F(SimulatorTest, FlexLevelFasterReadsThanLdpcInSsd) {
  // At P/E 6000 with old data, hot reads need soft sensing; FlexLevel moves
  // them to reduced pages and strips that cost. Measure steady state after
  // a warmup pass over the first half of the trace.
  const auto trace = small_trace(0.98, 13);
  const auto split =
      trace.begin() + static_cast<std::ptrdiff_t>(trace.size() / 2);
  auto steady = [&](Scheme scheme) {
    SsdSimulator sim(small_config(scheme), *normal_, *reduced_);
    sim.prefill(4000);
    sim.run({trace.begin(), split});
    sim.reset_measurements();
    return sim.run({split, trace.end()});
  };
  const auto flex_results = steady(Scheme::kFlexLevel);
  const auto prog_results = steady(Scheme::kLdpcInSsd);
  EXPECT_LT(flex_results.read_response.mean(),
            prog_results.read_response.mean());
}

TEST_F(SimulatorTest, FlexLevelWritesMoreThanLdpcInSsd) {
  // Fig. 7(a)/(b): migrations add NAND writes and erases.
  SsdSimulator flex(small_config(Scheme::kFlexLevel), *normal_, *reduced_);
  flex.prefill(4000);
  const auto flex_results = flex.run(small_trace(0.7, 17));

  SsdSimulator prog(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  prog.prefill(4000);
  const auto prog_results = prog.run(small_trace(0.7, 17));

  EXPECT_GT(flex_results.ftl.nand_writes, prog_results.ftl.nand_writes);
}

TEST_F(SimulatorTest, WriteBufferAbsorbsRewrites) {
  SsdSimulator sim(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(small_trace(0.2, 19));  // write-heavy
  EXPECT_GT(results.buffer_hits, 0u);
  // Host page writes that reached NAND are fewer than host writes issued
  // (buffer coalescing).
  EXPECT_LT(results.ftl.host_writes, results.all_response.count() * 4);
}

TEST_F(SimulatorTest, SensingLevelDistributionTracked) {
  SsdSimulator sim(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(small_trace(0.95, 23));
  std::uint64_t nand_reads = 0;
  for (const auto count : results.sensing_level_reads) nand_reads += count;
  EXPECT_GT(nand_reads, 0u);
  // Week-old P/E-6000 data needs soft sensing (Table 5: 2 levels).
  EXPECT_GT(results.sensing_level_reads[2] + results.sensing_level_reads[4] +
                results.sensing_level_reads[6],
            0u);
}

TEST_F(SimulatorTest, ReducedPagesReadHardEvenWhenOld) {
  // LevelAdjust-only drive: every page reduced (NUNMA 3) -> all NAND reads
  // at zero extra levels despite age and wear.
  SsdSimulator sim(small_config(Scheme::kLevelAdjustOnly), *normal_,
                   *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(small_trace(0.95, 29));
  std::uint64_t soft_reads = 0;
  for (std::size_t l = 1; l < results.sensing_level_reads.size(); ++l) {
    soft_reads += results.sensing_level_reads[l];
  }
  EXPECT_EQ(soft_reads, 0u);
  EXPECT_GT(results.sensing_level_reads[0], 0u);
}

TEST_F(SimulatorTest, NoUncorrectableReadsAtPaperOperatingPoint) {
  SsdSimulator sim(small_config(Scheme::kLdpcInSsd), *normal_, *reduced_);
  sim.prefill(4000);
  const auto results = sim.run(small_trace(0.8, 31));
  EXPECT_EQ(results.uncorrectable_reads, 0u);
}

}  // namespace
}  // namespace flex::ssd
