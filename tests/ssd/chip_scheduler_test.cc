// Pins the contention semantics of the ChipScheduler (two reads arriving
// simultaneously for one chip serialize; reads for distinct chips overlap)
// and the determinism contract of the event kernel. These invariants are
// what Fig. 6's queueing behaviour rests on — a refactor that silently
// changes them would shift every system-level result.
#include "ssd/chip_scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ssd/event_queue.h"

namespace flex::ssd {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&](SimTime) { order.push_back(3); });
  q.schedule(10, [&](SimTime) { order.push_back(1); });
  q.schedule(20, [&](SimTime) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.fired(), 3u);
}

TEST(EventQueueTest, EqualTimesFireInSchedulingOrder) {
  // The determinism keystone: ties break by sequence number, so identical
  // schedules replay identically.
  EventQueue q;
  std::string order;
  for (char c : {'a', 'b', 'c', 'd'}) {
    q.schedule(5, [&order, c](SimTime) { order.push_back(c); });
  }
  q.run_all();
  EXPECT_EQ(order, "abcd");
}

TEST(EventQueueTest, EventsMayScheduleFurtherEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&](SimTime now) {
    order.push_back(1);
    q.schedule(now + 5, [&](SimTime) { order.push_back(2); });
  });
  q.schedule(12, [&](SimTime) { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_TRUE(q.empty());
}

class ChipSchedulerTest : public ::testing::Test {
 protected:
  EventQueue events_;
};

TEST_F(ChipSchedulerTest, SimultaneousReadsOnOneChipSerialize) {
  ChipScheduler sched(4, events_);
  const ChipCommand read{.channel = 25, .die = 90, .controller = 10};
  const SimTime first = sched.submit(0, 1000, read);
  const SimTime second = sched.submit(0, 1000, read);
  EXPECT_EQ(first, 1000 + read.total());
  // The second read queues behind the first: same chip, zero overlap.
  EXPECT_EQ(second, first + read.total());
  events_.run_all();
  EXPECT_EQ(sched.stats()[0].commands, 2u);
  EXPECT_EQ(sched.stats()[0].queued_commands, 1u);
  EXPECT_EQ(sched.stats()[0].wait_time, read.total());
  EXPECT_EQ(sched.stats()[0].max_queue_depth, 2u);
}

TEST_F(ChipSchedulerTest, ReadsOnDistinctChipsOverlap) {
  ChipScheduler sched(4, events_);
  const ChipCommand read{.channel = 25, .die = 90, .controller = 10};
  const SimTime a = sched.submit(0, 1000, read);
  const SimTime b = sched.submit(1, 1000, read);
  // Full parallelism: both complete as if alone.
  EXPECT_EQ(a, 1000 + read.total());
  EXPECT_EQ(b, 1000 + read.total());
  events_.run_all();
  EXPECT_EQ(sched.stats()[0].queued_commands, 0u);
  EXPECT_EQ(sched.stats()[1].queued_commands, 0u);
  EXPECT_EQ(sched.stats()[0].wait_time, 0);
  EXPECT_EQ(sched.stats()[1].wait_time, 0);
}

TEST_F(ChipSchedulerTest, LateArrivalStartsAtArrival) {
  ChipScheduler sched(2, events_);
  sched.submit(0, 0, ChipCommand{.die = 100});
  // Arrives after the chip went idle: no queueing delay.
  const SimTime done = sched.submit(0, 500, ChipCommand{.die = 100});
  EXPECT_EQ(done, 600);
  EXPECT_EQ(sched.free_at(0), 600);
}

TEST_F(ChipSchedulerTest, OccupancySplitIsAccounted) {
  ChipScheduler sched(1, events_);
  sched.submit(0, 0, ChipCommand{.channel = 20, .die = 90, .controller = 18});
  sched.submit(0, 0, ChipCommand{.die = 1000});
  const ChipStats& stats = sched.stats()[0];
  EXPECT_EQ(stats.channel_busy, 20);
  EXPECT_EQ(stats.die_busy, 1090);
  EXPECT_EQ(stats.controller_busy, 18);
  EXPECT_EQ(stats.busy_time(), 1128);
  EXPECT_DOUBLE_EQ(stats.utilization(2256), 0.5);
}

TEST_F(ChipSchedulerTest, ChipOfStripesPagesAcrossChips) {
  ChipScheduler sched(8, events_);
  // Page-level channel striping: consecutive physical pages land on
  // consecutive chips.
  for (std::uint64_t ppn = 0; ppn < 32; ++ppn) {
    EXPECT_EQ(sched.chip_of(ppn), ppn % 8);
  }
}

TEST_F(ChipSchedulerTest, BackgroundTrainSpreadsRoundRobin) {
  ChipScheduler sched(4, events_);
  LatencyModel latency;
  // A flush with 2 GC relocations and 1 erase: host program on the page's
  // chip, relocations and erase on successive round-robin chips.
  ftl::WriteResult result{.ppn = 0, .page_programs = 3, .erases = 1};
  sched.submit_background(0, result, latency);
  EXPECT_EQ(sched.free_at(0), latency.program());  // host program
  const Duration move = latency.program() + latency.spec.read_latency;
  EXPECT_EQ(sched.free_at(1), move);
  EXPECT_EQ(sched.free_at(2), move);
  EXPECT_EQ(sched.free_at(3), latency.erase());
}

TEST_F(ChipSchedulerTest, ResetStatsKeepsOccupancy) {
  ChipScheduler sched(2, events_);
  sched.submit(0, 0, ChipCommand{.die = 100});
  sched.reset_stats();
  EXPECT_EQ(sched.stats()[0].commands, 0u);
  // The chip is still busy: reset clears measurements, not state.
  EXPECT_EQ(sched.free_at(0), 100);
  const SimTime done = sched.submit(0, 0, ChipCommand{.die = 50});
  EXPECT_EQ(done, 150);
  EXPECT_EQ(sched.stats()[0].queued_commands, 1u);
}

}  // namespace
}  // namespace flex::ssd
