// Reproduces paper Fig. 5: BER of reduced-state cells after cell-to-cell
// interference, for the three NUNMA configurations (Table 3) against the
// baseline MLC cell. Monte-Carlo over the even/odd CellArray with the
// paper's coupling ratios (0.07 / 0.09 / 0.005).
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_engine.h"

int main() {
  using flex::TablePrinter;

  std::printf("=== Table 3: NUNMA configurations under test ===\n\n");
  TablePrinter config_table(
      {"scheme", "Vpp", "Vverify1", "Vverify2", "Vread-ref1", "Vread-ref2"});
  for (const auto scheme : flex::flexlevel::kNunmaSchemes) {
    const auto cfg = flex::flexlevel::nunma_config(scheme);
    config_table.add_row({cfg.name(), TablePrinter::num(cfg.vpp()),
                          TablePrinter::num(cfg.verify(1)),
                          TablePrinter::num(cfg.verify(2)),
                          TablePrinter::num(cfg.read_ref(0)),
                          TablePrinter::num(cfg.read_ref(1))});
  }
  std::printf("%s\n", config_table.to_string().c_str());

  std::printf("=== Fig. 5: C2C-interference BER ===\n\n");
  flex::Rng rng(0xF150);
  // Large population: reduced-state C2C errors are rare events.
  flex::reliability::BerEngine engine(
      {.wordlines = 128, .bitlines = 512, .rounds = 16, .coupling = {}});
  const flex::reliability::GrayMapper gray;
  const flex::flexlevel::ReduceCodeMapper reduce;

  TablePrinter table({"scheme", "C2C BER", "95% margin", "vs baseline"});
  std::vector<double> bers;
  {
    const auto report =
        engine.measure(flex::nand::LevelConfig::baseline_mlc(), gray,
                       /*retention=*/nullptr, 0, 0.0, rng);
    bers.push_back(report.c2c.rate());
    table.add_row({"baseline", TablePrinter::num(report.c2c.rate()),
                   TablePrinter::num(report.c2c.margin95(), 2), "1.0x"});
  }
  for (const auto scheme : flex::flexlevel::kNunmaSchemes) {
    const auto report =
        engine.measure(flex::flexlevel::nunma_config(scheme), reduce,
                       /*retention=*/nullptr, 0, 0.0, rng);
    bers.push_back(report.c2c.rate());
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx lower",
                  bers.front() / std::max(report.c2c.rate(), 1e-9));
    table.add_row({flex::flexlevel::nunma_name(scheme),
                   TablePrinter::num(report.c2c.rate()),
                   TablePrinter::num(report.c2c.margin95(), 2), ratio});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Paper shape: NUNMA 1 up to 6x below baseline; NUNMA 3 ~50%% and "
      "~20%% above NUNMA 1 and NUNMA 2 (higher verify voltages eat C2C "
      "margin).\n");
  std::printf("Measured: NUNMA3/NUNMA1 = %.2f, NUNMA3/NUNMA2 = %.2f\n",
              bers[3] / std::max(bers[1], 1e-12),
              bers[3] / std::max(bers[2], 1e-12));
  return 0;
}
