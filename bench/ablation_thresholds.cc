// Adaptive read-threshold / MI-sensing ablation (reliability::ReadChannel;
// no paper figure — the DAC'15 evaluation keeps static references; the
// threshold model follows the adaptive-read-threshold line of work and the
// quantizer follows MI-optimized LDPC quantization, see PAPERS.md).
//
// The stress point is a worn drive late in a retention cycle: high P/E,
// month-scale prefill ages and accelerated read disturb push many reads
// past the hard-decision cap, so the static ladder pays soft-sensing
// retries on a large fraction of reads. Adaptive per-block thresholds
// re-center the references against the tracked V_th drift (disturb via
// residual read counts, retention via the mean-loss estimate) and the
// MI-optimized quantizer raises every soft step's BER cap; both shrink
// required sensing depth, which shows up directly as fewer retries and a
// lower read tail. The measured-decode variant additionally replaces the
// linear decode-latency table with real min-sum iteration counts.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "telemetry/telemetry.h"
#include "trace/workloads.h"

namespace {

/// Soft-sensing retries implied by the per-required-level read counts: a
/// read whose data needs ladder step k walked (and failed) the k steps
/// below it first.
std::uint64_t soft_retries(const std::vector<std::uint64_t>& by_level) {
  // Table-5 ladder {0,1,2,4,6}: required extra levels -> failed attempts.
  const std::size_t ladder_index[] = {0, 1, 2, 0, 3, 0, 4};
  std::uint64_t retries = 0;
  for (std::size_t levels = 1; levels < by_level.size(); ++levels) {
    if (levels < std::size(ladder_index)) {
      retries += ladder_index[levels] * by_level[levels];
    }
  }
  return retries;
}

std::uint64_t soft_reads(const std::vector<std::uint64_t>& by_level) {
  std::uint64_t reads = 0;
  for (std::size_t levels = 1; levels < by_level.size(); ++levels) {
    reads += by_level[levels];
  }
  return reads;
}

}  // namespace

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 100'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== Read-threshold / MI-sensing ablation (web-1, P/E 9000, %llu "
      "requests) ===\n\n",
      static_cast<unsigned long long>(requests));
  flex::bench::ExperimentHarness harness;

  // Accelerated disturb stress (ablation_disturb's setting) so web-1's
  // read-hot blocks cross ladder steps within bench-scale read counts.
  flex::reliability::ReadDisturbModel::Params stress;
  stress.vth_shift_per_read = 1.8e-4;

  struct Variant {
    std::string label;
    bool adaptive = false;
    bool mi = false;
    bool measured = false;
  };
  const std::vector<Variant> variants = {
      {.label = "static references (baseline)"},
      {.label = "adaptive thresholds", .adaptive = true},
      {.label = "MI-optimized sensing", .mi = true},
      {.label = "adaptive + MI", .adaptive = true, .mi = true},
      {.label = "adaptive + MI + measured decode",
       .adaptive = true,
       .mi = true,
       .measured = true},
  };

  const bool collect =
      !outputs.trace_out.empty() || !outputs.metrics_out.empty();
  const auto all = flex::bench::run_indexed(
      variants.size(),
      [&](std::size_t i) {
        flex::ssd::SsdConfig cfg = flex::bench::ExperimentHarness::
            drive_config(flex::ssd::Scheme::kLdpcInSsd, 9000);
        // Late in the retention cycle: data is up to a quarter old, so the
        // retention term dominates and re-centering has drift to reclaim.
        cfg.max_prefill_age = 3 * flex::kMonth;
        cfg.read_disturb.enabled = true;
        cfg.read_disturb.model = stress;
        const Variant& v = variants[i];
        cfg.channel.enabled = v.adaptive || v.mi || v.measured;
        cfg.channel.adaptive_thresholds = v.adaptive;
        cfg.channel.quantizer =
            v.mi ? flex::reliability::ChannelQuantizer::kMiOptimized
                 : flex::reliability::ChannelQuantizer::kUniform;
        cfg.channel.decode_latency =
            v.measured ? flex::reliability::DecodeLatencyMode::kMeasured
                       : flex::reliability::DecodeLatencyMode::kTable;
        if (!collect) {
          return harness.run_with(cfg, flex::trace::Workload::kWeb1,
                                  requests);
        }
        flex::telemetry::Telemetry telemetry;
        telemetry.pid = static_cast<std::int32_t>(i + 1);
        telemetry.trace = !outputs.trace_out.empty();
        return harness.run_with(cfg, flex::trace::Workload::kWeb1, requests,
                                &telemetry);
      },
      jobs);
  const auto& reference = all.front();

  TablePrinter table({"variant", "norm mean read", "norm p99 read",
                      "soft reads", "soft retries", "uncorrectable"});
  const double ref_mean = reference.read_response.mean();
  const double ref_p99 = reference.read_latency_hist.quantile(0.99);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = all[i];
    table.add_row(
        {variants[i].label,
         TablePrinter::num(r.read_response.mean() / ref_mean, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) / ref_p99, 3),
         std::to_string(soft_reads(r.sensing_level_reads)),
         std::to_string(soft_retries(r.sensing_level_reads)),
         std::to_string(r.uncorrectable_reads)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Re-centered references stop compensated drift from eating sensing "
      "margin, and MI-placed strobes raise each ladder step's BER cap — "
      "both push reads back down the ladder, trading soft-sensing retries "
      "for hard reads and pulling in the read tail. Measured decode "
      "re-prices each attempt from real min-sum iteration counts, leaving "
      "depth (and retry counts) unchanged.\n");

  std::vector<flex::bench::RunLabel> runs;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    runs.push_back(
        {"thresholds/" + variants[i].label, static_cast<std::int32_t>(i + 1)});
  }
  if (collect) {
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, all);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, all);
    }
  }
  flex::bench::write_bench_json(
      outputs.bench_out.empty() ? "BENCH_thresholds.json" : outputs.bench_out,
      "thresholds", requests, jobs, runs, all);
  return 0;
}
