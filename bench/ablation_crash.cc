// Power-loss crash-consistency sweep (no paper figure — the DAC'15
// evaluation never pulls the plug; the recovery design follows the OOB
// mount convention of production FTLs, see ftl/page_mapping.h §Mount).
//
// Web-1 is the paper's headline workload, so it is the right traffic to
// crash under. Each crash point is one full workload → power-loss →
// mount → verify cycle: the injector hashes (seed, event ordinal, salt),
// so sweeping the salt walks the power loss across distinct event-queue
// boundaries while the workload itself stays byte-identical. A salt whose
// hash never fires inside the trace still crashes at end of trace (cord
// pull), so every point exercises recovery. After mount, the harness
// checks the three durability invariants (no acknowledged-durable write
// lost, no double-mapped LPN, retired-block ledger intact) plus the FTL's
// structural self-checks; any violation fails the bench (nonzero exit).
//
//   ablation_crash [requests] [crash_points] [--jobs N]
//                  [--report-out PATH]   # per-point JSONL recovery report
//
// Output is deterministic and independent of --jobs (CI diffs the two).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "ftl/page_mapping.h"
#include "ssd/crash_harness.h"
#include "trace/workloads.h"

namespace {

/// Extracts `--report-out PATH` (or `--report-out=PATH`) from argv.
std::string parse_report_out(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    constexpr const char* kFlag = "--report-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      path = argv[i] + std::strlen(kFlag);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const std::string report_out = parse_report_out(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 6000;
  std::uint64_t crash_points = 32;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) crash_points = std::strtoull(argv[2], nullptr, 10);

  std::printf(
      "=== Crash-consistency sweep (web-1, P/E 6000, %llu requests, "
      "%llu crash points per variant) ===\n\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(crash_points));
  flex::bench::ExperimentHarness harness;

  struct Variant {
    std::string label;
    flex::ssd::Scheme scheme;
    flex::ssd::DurabilityPolicy policy;
  };
  const std::vector<Variant> variants = {
      {"LDPC-in-SSD, flush-barrier", flex::ssd::Scheme::kLdpcInSsd,
       flex::ssd::DurabilityPolicy::kFlushBarrier},
      {"LDPC-in-SSD, FUA", flex::ssd::Scheme::kLdpcInSsd,
       flex::ssd::DurabilityPolicy::kFua},
      {"FlexLevel, flush-barrier", flex::ssd::Scheme::kFlexLevel,
       flex::ssd::DurabilityPolicy::kFlushBarrier},
  };

  const auto config_for = [&](const Variant& variant) {
    flex::ssd::SsdConfig cfg =
        flex::bench::ExperimentHarness::drive_config(variant.scheme, 6000);
    // Program/erase faults ride along so block retirements happen and
    // invariant 3 (retirement survives the crash) has something to check.
    cfg.faults.enabled = true;
    cfg.faults.program_fail_rate = 1e-4;
    cfg.faults.erase_fail_rate = 1e-4;
    cfg.faults.crash_enabled = true;
    // ~12k-18k events per trace at the default request count: this rate
    // lands most salts mid-trace; the rest cord-pull at end of trace.
    cfg.faults.crash_rate = 1.0 / 8192.0;
    cfg.durability.policy = variant.policy;
    // Small enough that barriers actually fire inside web-1's ~1% write
    // share, so the sweep exercises mid-trace durability promotion.
    cfg.durability.flush_barrier_interval = 64;
    return cfg;
  };

  // Same trace methodology as every system bench (bench_common.h):
  // workload defaults, arrival rate scaled with the drive, fixed seed.
  flex::trace::WorkloadParams params =
      flex::trace::workload_params(flex::trace::Workload::kWeb1);
  if (requests > 0) params.requests = requests;
  params.iops *= 0.45;
  const auto trace = flex::trace::generate(params, /*seed=*/2015);
  // 80% standing population, as in ExperimentHarness::run_with.
  const std::uint64_t prefill_pages =
      flex::ftl::PageMappingFtl(
          flex::bench::ExperimentHarness::drive_config(
              flex::ssd::Scheme::kLdpcInSsd, 6000)
              .ftl)
          .logical_pages() *
      4 / 5;

  // Fan the (variant, salt) grid across jobs: every cell owns its
  // simulator, results land in index order, so output never depends on
  // the job count (CI diffs --jobs 1 against --jobs 8).
  const std::size_t total = variants.size() * crash_points;
  std::vector<flex::ssd::CrashVerdict> verdicts(total);
  {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < total;
           i = next.fetch_add(1)) {
        const std::size_t v = i / crash_points;
        const std::uint64_t salt = i % crash_points;
        verdicts[i] = flex::ssd::run_crash_point(
            config_for(variants[v]), trace, salt, prefill_pages,
            harness.normal_model(), harness.reduced_model());
      }
    };
    std::size_t threads = jobs <= 0
                              ? std::thread::hardware_concurrency()
                              : static_cast<std::size_t>(jobs);
    if (threads == 0) threads = 1;
    threads = std::min(threads, total);
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
    worker();
    for (auto& thread : pool) thread.join();
  }

  std::uint64_t violations = 0;
  TablePrinter table({"variant", "mid-trace", "acked", "durable",
                      "dirty lost", "recovered", "stale", "mount ms",
                      "violations"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::uint64_t mid_trace = 0, acked = 0, durable = 0, dirty = 0;
    std::uint64_t recovered = 0, stale = 0, bad = 0;
    flex::Duration mount_time = 0;
    for (std::uint64_t salt = 0; salt < crash_points; ++salt) {
      const auto& verdict = verdicts[v * crash_points + salt];
      mid_trace += verdict.crashed_mid_trace ? 1 : 0;
      acked += verdict.writes_acked;
      durable += verdict.writes_durable;
      dirty += verdict.dirty_lost;
      recovered += verdict.report.mappings_recovered;
      stale += verdict.stale_records;
      mount_time += verdict.mount_time;
      if (!verdict.ok()) {
        ++bad;
        std::fprintf(stderr,
                     "VIOLATION %s salt=%llu: lost_acked=%llu "
                     "double_mapped=%zu ledger_ok=%d consistent=%d %s\n",
                     variants[v].label.c_str(),
                     static_cast<unsigned long long>(salt),
                     static_cast<unsigned long long>(
                         verdict.lost_acknowledged),
                     verdict.double_mapped.size(),
                     verdict.retired_ledger_ok ? 1 : 0,
                     verdict.consistent ? 1 : 0,
                     verdict.consistency_message.c_str());
      }
    }
    violations += bad;
    const double points = static_cast<double>(crash_points);
    table.add_row({variants[v].label,
                   std::to_string(mid_trace) + "/" +
                       std::to_string(crash_points),
                   std::to_string(acked), std::to_string(durable),
                   std::to_string(dirty),
                   std::to_string(recovered / crash_points),
                   std::to_string(stale),
                   TablePrinter::num(flex::to_seconds(mount_time) * 1e3 /
                                         points,
                                     5),
                   std::to_string(bad)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Each crash point: workload -> power loss -> OOB mount -> verify. "
      "\"acked\" vs \"durable\" is the durability policy's promise window; "
      "\"dirty lost\" pages were acknowledged under a barrier policy but "
      "never durable, so losing them is within contract — the invariants "
      "only protect what was programmed. \"stale\" counts superseded OOB "
      "records that last-epoch-wins correctly discarded; mount time is the "
      "simulated OOB scan (summary read per block + spare read per "
      "programmed page).\n\n");
  std::printf("invariant violations: %llu\n",
              static_cast<unsigned long long>(violations));

  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_out.c_str());
      return EXIT_FAILURE;
    }
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (std::uint64_t salt = 0; salt < crash_points; ++salt) {
        const auto& verdict = verdicts[v * crash_points + salt];
        out << "{\"variant\":\"" << variants[v].label << "\",\"salt\":"
            << salt << ",\"mid_trace\":"
            << (verdict.crashed_mid_trace ? "true" : "false")
            << ",\"crash_ordinal\":" << verdict.crash_ordinal
            << ",\"acked\":" << verdict.writes_acked
            << ",\"durable\":" << verdict.writes_durable
            << ",\"dirty_lost\":" << verdict.dirty_lost
            << ",\"lost_acknowledged\":" << verdict.lost_acknowledged
            << ",\"double_mapped\":" << verdict.double_mapped.size()
            << ",\"retired_ledger_ok\":"
            << (verdict.retired_ledger_ok ? "true" : "false")
            << ",\"consistent\":" << (verdict.consistent ? "true" : "false")
            << ",\"pages_scanned\":" << verdict.report.pages_scanned
            << ",\"mappings_recovered\":"
            << verdict.report.mappings_recovered
            << ",\"stale_records\":" << verdict.stale_records
            << ",\"mount_time_ns\":" << verdict.mount_time << "}\n";
      }
    }
  }
  return violations == 0 ? 0 : 1;
}
