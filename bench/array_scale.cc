// Multi-SSD array scaling bench (no paper figure — the DAC'15 evaluation
// is single-drive; this bench exercises the src/host array subsystem:
// shared-kernel composition, NVMe-ish queue pairs, the interconnect, and
// the striped/replicated volume).
//
// Three experiments:
//  * a RAID-0 scale sweep (1/2/4/8 drives) at a fixed per-drive offered
//    load (60% of the single-drive saturation knee) — read throughput
//    must scale near-linearly with drive count, since the volume stripes
//    the address space and the drives share nothing but the host links;
//  * a replica-steering comparison on a 4-drive RAID-10 (2 copies) under
//    a read-hot population with accelerated read disturb — round-robin
//    vs. shortest-queue vs. disturb-aware placement, the last spreading
//    block read counts across copies to defer refresh scrubs;
//  * the AccessEval scope ablation on a FlexLevel RAID-10: kPerDrive
//    (each copy learns only the reads it serves — replication dilutes
//    the hotness signal) vs. kGlobal (replicated reads also feed the
//    sibling copies, so all replicas converge on the array-wide view).
//
// Stdout is fully deterministic (simulated clocks only, no wall-clock or
// machine state) and must be byte-identical across --jobs values; host
// wall-clock per run goes to BENCH_array.json only.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "common/units.h"
#include "host/array.h"
#include "telemetry/export.h"
#include "workload/engine.h"

namespace {

using flex::bench::ExperimentHarness;
using flex::host::ArrayConfig;
using flex::host::ArrayResults;
using flex::host::ArraySimulator;

// Per-drive offered load: 60% of the 4k requests/s knee where the scaled
// drive saturates under this tenant mix (see ablation_qos.cc) — every
// array size runs its drives at the same utilisation, so total offered
// IOPS grows linearly with drive count and measured throughput is the
// scaling signal.
constexpr double kPerDriveIops = 0.6 * 4'000.0;

struct Variant {
  std::string label;
  std::uint32_t drives = 1;
  std::uint32_t replication = 1;
  flex::host::ReplicaPolicy policy = flex::host::ReplicaPolicy::kRoundRobin;
  flex::host::AccessEvalScope scope = flex::host::AccessEvalScope::kPerDrive;
  flex::ssd::Scheme scheme = flex::ssd::Scheme::kLdpcInSsd;
  double read_fraction = 0.7;
  flex::ssd::ReadDisturbConfig disturb;
  /// Tenant footprint in host pages; 0 = the whole standing population.
  /// The disturb and AccessEval rows concentrate reads on a small working
  /// set — block read counts and hotness classification need repeats.
  std::uint64_t footprint_pages = 0;
  /// Hotness-filter rotation window override (accesses per filter); 0 =
  /// the drive default, which is sized for a drive receiving the whole
  /// host stream. An array drive sees 1/N of the reads, so the AccessEval
  /// rows shrink the window to keep the identifier's timescale constant.
  std::uint64_t hotness_window = 0;
};

const char* policy_name(flex::host::ReplicaPolicy policy) {
  switch (policy) {
    case flex::host::ReplicaPolicy::kRoundRobin: return "round-robin";
    case flex::host::ReplicaPolicy::kShortestQueue: return "shortest-queue";
    case flex::host::ReplicaPolicy::kDisturbAware: return "disturb-aware";
  }
  return "?";
}

/// The non-degenerate host profile shared by every row: per-hop costs are
/// small against the ~0.3 ms drive service time, so they tax rather than
/// dominate the response (the zero-cost identity profile lives in the
/// tests, not here).
ArrayConfig array_config(const Variant& v) {
  ArrayConfig cfg;
  cfg.drives = v.drives;
  cfg.replication_factor = v.replication;
  cfg.stripe_pages = 64;
  cfg.replica_policy = v.policy;
  cfg.access_eval_scope = v.scope;
  cfg.tenants = 4;
  cfg.queue_pair.queue_pairs = 4;
  cfg.queue_pair.sq_depth = 64;
  cfg.queue_pair.cq_depth = 64;
  cfg.queue_pair.doorbell_latency = 500;    // ns
  cfg.queue_pair.completion_latency = 500;  // ns
  cfg.interconnect.requesters = 2;
  cfg.interconnect.requester_link = {.latency = 200, .gb_per_s = 8.0};
  cfg.interconnect.switch_fabric = {.latency = 100, .gb_per_s = 16.0};
  cfg.interconnect.drive_link = {.latency = 200, .gb_per_s = 4.0};
  cfg.drive = ExperimentHarness::drive_config(v.scheme, 6000);
  cfg.drive.read_disturb = v.disturb;
  if (v.hotness_window > 0) {
    cfg.drive.access_eval.hotness.window_accesses = v.hotness_window;
  }
  return cfg;
}

/// One row under the harness methodology: 80% standing population,
/// warmup window feeding seamlessly into the measured window.
ArrayResults run_row(const ExperimentHarness& harness, const Variant& v,
                     std::uint64_t warmup, std::uint64_t requests) {
  const auto start = std::chrono::steady_clock::now();
  auto built = ArraySimulator::Builder(harness.normal_model(),
                                       harness.reduced_model())
                   .config(array_config(v))
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "array config rejected (%s): %s\n",
                 v.label.c_str(), built.status().to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  ArraySimulator& array = **built;
  const std::uint64_t standing = array.logical_pages() * 4 / 5;
  array.prefill(standing);
  const std::uint64_t footprint =
      v.footprint_pages > 0 ? std::min(v.footprint_pages, standing)
                            : standing;

  // 4 Zipf(0.9) tenants over equal slices of the standing population;
  // tenant 0 is the latency-sensitive foreground service, and tenants pin
  // to alternating host ports so both uplinks carry traffic.
  flex::workload::EngineConfig engine;
  engine.arrivals.base_iops = kPerDriveIops * v.drives;
  engine.tenants = flex::workload::zipf_tenant_population(4, 0.9, footprint);
  for (std::size_t i = 0; i < engine.tenants.size(); ++i) {
    engine.tenants[i].read_fraction = v.read_fraction;
    engine.tenants[i].requester = static_cast<std::uint8_t>(i % 2);
  }
  engine.tenants[0].priority = 1;
  engine.seed = 0xA44A;
  if (const flex::Status status = engine.Validate(); !status.ok()) {
    std::fprintf(stderr, "array workload rejected (%s): %s\n",
                 v.label.c_str(), status.to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  flex::workload::WorkloadEngine source(engine);

  if (warmup > 0) array.run_open_loop(source, warmup);
  array.reset_measurements();
  array.run_open_loop(source, requests);
  ArrayResults results = array.results();
  results.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return results;
}

/// run_indexed's work-stealing fan-out, for ArrayResults rows (the shared
/// helper is typed to SsdResults). Results land in index order, so output
/// is identical to a serial sweep.
std::vector<ArrayResults> run_rows(
    std::size_t count,
    const std::function<ArrayResults(std::size_t)>& runner, int jobs) {
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  std::vector<ArrayResults> results(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = runner(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      results[i] = runner(i);
    }
  };
  std::vector<std::thread> pool;
  const auto threads =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  return results;
}

double reads_per_second(const ArrayResults& r) {
  const double window = flex::to_seconds(r.window);
  return window <= 0.0
             ? 0.0
             : static_cast<double>(r.read_response.count()) / window;
}

std::uint64_t sum_refresh(const ArrayResults& r) {
  std::uint64_t sum = 0;
  for (const auto& d : r.drive) sum += d.refresh_blocks;
  return sum;
}

std::uint64_t sum_migrations(const ArrayResults& r) {
  std::uint64_t sum = 0;
  for (const auto& d : r.drive) {
    sum += d.migrations_to_reduced + d.migrations_to_normal;
  }
  return sum;
}

void write_array_json(const std::string& path, std::uint64_t requests,
                      int jobs, const std::vector<Variant>& variants,
                      const std::vector<ArrayResults>& all) {
  using flex::telemetry::format_double;
  using flex::telemetry::json_escape;
  const flex::ssd::SsdConfig drive =
      ExperimentHarness::drive_config(flex::ssd::Scheme::kLdpcInSsd, 6000);
  std::ofstream out(path);
  out << "{\n\"bench\":\"array\",\n"
      << "\"git_sha\":\"" << json_escape(FLEX_GIT_SHA) << "\",\n"
      << "\"config\":{"
      << "\"chips\":" << drive.ftl.spec.chips
      << ",\"blocks_per_chip\":" << drive.ftl.spec.blocks_per_chip
      << ",\"pages_per_block\":" << drive.ftl.spec.pages_per_block
      << ",\"page_size_bytes\":" << drive.ftl.spec.page_size_bytes
      << ",\"per_drive_iops\":" << format_double(kPerDriveIops)
      << ",\"requests_override\":" << requests << ",\"jobs\":" << jobs
      << "},\n\"runs\":[";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const ArrayResults& r = all[i];
    const flex::Duration window = r.window > 0 ? r.window : 1;
    out << (i == 0 ? "\n" : ",\n") << "{\"label\":\""
        << json_escape(v.label) << '"' << ",\"drives\":" << v.drives
        << ",\"replication\":" << v.replication << ",\"policy\":\""
        << policy_name(v.policy) << "\",\"access_eval_scope\":\""
        << (v.scope == flex::host::AccessEvalScope::kGlobal ? "global"
                                                            : "per-drive")
        << "\",\"scheme\":\"" << json_escape(flex::ssd::scheme_name(v.scheme))
        << "\",\"requests\":" << r.all_response.count()
        << ",\"reads\":" << r.read_response.count()
        << ",\"writes\":" << r.write_response.count()
        << ",\"window_s\":" << format_double(flex::to_seconds(r.window))
        << ",\"read_throughput_rps\":" << format_double(reads_per_second(r))
        << ",\"read_mean_s\":" << format_double(r.read_response.mean())
        << ",\"read_p99_s\":"
        << format_double(r.read_latency_hist.quantile(0.99))
        << ",\"read_p999_s\":"
        << format_double(r.read_latency_hist.quantile(0.999))
        << ",\"write_mean_s\":" << format_double(r.write_response.mean())
        << ",\"breakdown_s\":{\"submit\":"
        << format_double(flex::to_seconds(r.read_breakdown.submit))
        << ",\"queue\":"
        << format_double(flex::to_seconds(r.read_breakdown.queue))
        << ",\"drive\":"
        << format_double(flex::to_seconds(r.read_breakdown.drive))
        << ",\"completion\":"
        << format_double(flex::to_seconds(r.read_breakdown.completion))
        << "},\"switch_utilization\":"
        << format_double(r.switch_fabric.utilization(window))
        << ",\"observe_feeds\":" << r.observe_feeds
        << ",\"refresh_blocks\":" << sum_refresh(r)
        << ",\"migrations\":" << sum_migrations(r)
        << ",\"wall_clock_s\":" << format_double(r.wall_seconds)
        << ",\"replica_reads\":[";
    for (std::size_t d = 0; d < r.replica_reads.size(); ++d) {
      out << (d == 0 ? "" : ",") << r.replica_reads[d];
    }
    out << "],\"drive_link_utilization\":[";
    for (std::size_t d = 0; d < r.drive_link.size(); ++d) {
      out << (d == 0 ? "" : ",")
          << format_double(r.drive_link[d].utilization(window));
    }
    out << "],\"qp\":[";
    for (std::size_t d = 0; d < r.qp.size(); ++d) {
      out << (d == 0 ? "" : ",") << "{\"submitted\":" << r.qp[d].submitted
          << ",\"backlogged\":" << r.qp[d].backlogged
          << ",\"cq_stalls\":" << r.qp[d].cq_stalls
          << ",\"sq_high_water\":" << r.qp[d].sq_high_water << '}';
    }
    out << "],\"tenants\":[";
    for (std::size_t t = 0; t < r.tenant.size(); ++t) {
      const flex::ssd::TenantStats& ts = r.tenant[t];
      out << (t == 0 ? "" : ",") << "{\"reads\":"
          << ts.read_response.count()
          << ",\"read_mean_s\":" << format_double(ts.read_response.mean())
          << ",\"read_p99_s\":"
          << format_double(ts.read_latency_hist.quantile(0.99))
          << ",\"read_p999_s\":"
          << format_double(ts.read_latency_hist.quantile(0.999)) << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 40'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);
  const std::uint64_t warmup = requests / 3;

  std::printf(
      "=== Array scaling (per-drive load %.0f req/s, 4 tenants, %llu "
      "requests) ===\n\n",
      kPerDriveIops, static_cast<unsigned long long>(requests));
  ExperimentHarness harness;

  std::vector<Variant> variants;
  for (const std::uint32_t drives : {1u, 2u, 4u, 8u, 16u}) {
    Variant v;
    v.label = "scale/raid0-" + std::to_string(drives);
    v.drives = drives;
    variants.push_back(std::move(v));
  }
  for (const flex::host::ReplicaPolicy policy :
       {flex::host::ReplicaPolicy::kRoundRobin,
        flex::host::ReplicaPolicy::kShortestQueue,
        flex::host::ReplicaPolicy::kDisturbAware}) {
    // Read-hot mirror pair under accelerated disturb: replica steering
    // decides which copy's blocks absorb the read-count pressure.
    Variant v;
    v.label = std::string("replica/") + policy_name(policy);
    v.drives = 4;
    v.replication = 2;
    v.policy = policy;
    v.read_fraction = 0.98;
    v.footprint_pages = 96'000;
    v.disturb.enabled = true;
    v.disturb.model.vth_shift_per_read = 1.8e-4;
    v.disturb.refresh_threshold = 64;
    variants.push_back(std::move(v));
  }
  for (const flex::host::AccessEvalScope scope :
       {flex::host::AccessEvalScope::kPerDrive,
        flex::host::AccessEvalScope::kGlobal}) {
    Variant v;
    v.label = std::string("accesseval/") +
              (scope == flex::host::AccessEvalScope::kGlobal ? "global"
                                                             : "per-drive");
    v.drives = 4;
    v.replication = 2;
    v.scope = scope;
    v.scheme = flex::ssd::Scheme::kFlexLevel;
    v.footprint_pages = 96'000;
    v.hotness_window = 4'096;
    variants.push_back(std::move(v));
  }

  const auto all = run_rows(
      variants.size(),
      [&](std::size_t i) {
        return run_row(harness, variants[i], warmup, requests);
      },
      jobs);

  TablePrinter table({"variant", "drives", "R", "reads/s", "scaling",
                      "read mean ms", "read p99 ms", "t0 p99 ms",
                      "refresh", "feeds"});
  const double base_rps = reads_per_second(all[0]);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const ArrayResults& r = all[i];
    const bool scale_row = v.label.rfind("scale/", 0) == 0;
    table.add_row(
        {v.label, std::to_string(v.drives), std::to_string(v.replication),
         TablePrinter::num(reads_per_second(r), 6),
         scale_row && base_rps > 0
             ? TablePrinter::num(reads_per_second(r) / base_rps, 2) + "x"
             : "-",
         TablePrinter::num(r.read_response.mean() * 1e3, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) * 1e3, 3),
         TablePrinter::num(
             r.tenant[0].read_latency_hist.quantile(0.99) * 1e3, 3),
         std::to_string(sum_refresh(r)), std::to_string(r.observe_feeds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Scale rows stripe one address space across N drives at a fixed "
      "per-drive offered load, so reads/s tracks drive count while the "
      "per-request response stays flat: the drives share nothing but the "
      "host links. Replica rows mirror a read-hot population under "
      "accelerated read disturb — disturb-aware steering splits each "
      "block's read count across the two copies, deferring refresh "
      "scrubs. AccessEval rows measure what an array-wide hotness view "
      "buys FlexLevel on a mirror: per-drive scope halves each copy's "
      "view of a page's heat, the global scope feeds served reads to the "
      "sibling replicas too. The feed roughly doubles promotions into the "
      "ReducedCell pool (the migrations column of BENCH_array.json); "
      "whether that pays depends on the marginal pages' re-read rate — "
      "here their relocation traffic costs more than their sensing "
      "savings return, so the diluted per-drive signal acts as a useful "
      "promotion filter.\n");

  write_array_json(
      outputs.bench_out.empty() ? "BENCH_array.json" : outputs.bench_out,
      requests, jobs, variants, all);
  return 0;
}
