// Reproduces paper Fig. 6(b): average response time of
// LevelAdjust+AccessEval normalized to LDPC-in-SSD as the pre-aged P/E
// count grows (paper: the reduction widens from 21% at P/E 4000 to 33% at
// P/E 6000 — aging raises the soft-sensing burden FlexLevel removes).
//
// The 42 (P/E, workload, scheme) cells are independent; `--jobs N` (or
// FLEX_BENCH_JOBS) fans them across a thread pool with identical results.
// `--trace-out`/`--metrics-out` export the measured window's spans and
// metrics (observation-only; stdout unchanged); a machine-readable
// summary always lands in BENCH_fig6b.json (`--bench-out` overrides).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Fig. 6(b): response time vs LDPC-in-SSD across P/E ===\n\n");
  flex::bench::ExperimentHarness harness;

  const struct {
    int pe;
    const char* paper;
  } points[] = {{4000, "-21%"}, {5000, "(interpolates)"}, {6000, "-33%"}};

  // One flat cell list over (P/E point, workload) x {LDPC-in-SSD, FlexLevel}
  // so the pool sees every independent simulation at once.
  std::vector<flex::bench::CellSpec> cells;
  for (const auto& point : points) {
    for (const auto workload : flex::trace::kAllWorkloads) {
      for (const auto scheme : {flex::ssd::Scheme::kLdpcInSsd,
                                flex::ssd::Scheme::kFlexLevel}) {
        cells.push_back(
            {.workload = workload,
             .scheme = scheme,
             .pe_cycles = point.pe,
             .requests_override = requests,
             .collect_metrics = !outputs.metrics_out.empty(),
             .collect_spans = !outputs.trace_out.empty(),
             .telemetry_pid = static_cast<std::int32_t>(cells.size() + 1)});
      }
    }
  }
  const auto results = flex::bench::run_cells(harness, cells, jobs);

  TablePrinter table(
      {"P/E", "workload-avg normalized response", "reduction", "paper"});
  std::size_t cell = 0;
  for (const auto& point : points) {
    double ratio_sum = 0.0;
    int count = 0;
    for ([[maybe_unused]] const auto workload : flex::trace::kAllWorkloads) {
      const auto& ldpc = results[cell++];
      const auto& flexlevel = results[cell++];
      ratio_sum += flexlevel.all_response.mean() / ldpc.all_response.mean();
      ++count;
    }
    const double ratio = ratio_sum / count;
    table.add_row({std::to_string(point.pe), TablePrinter::num(ratio, 3),
                   TablePrinter::percent(ratio - 1.0), point.paper});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper shape: the FlexLevel advantage must widen as P/E "
              "grows.\n");

  if (!outputs.trace_out.empty()) {
    flex::bench::write_trace_file(outputs.trace_out, cells, results);
  }
  if (!outputs.metrics_out.empty()) {
    flex::bench::write_metrics_file(outputs.metrics_out, cells, results);
  }
  flex::bench::write_bench_json(
      outputs.bench_out.empty() ? "BENCH_fig6b.json" : outputs.bench_out,
      "fig6b", requests, jobs, cells, results);
  return 0;
}
