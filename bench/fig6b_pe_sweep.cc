// Reproduces paper Fig. 6(b): average response time of
// LevelAdjust+AccessEval normalized to LDPC-in-SSD as the pre-aged P/E
// count grows (paper: the reduction widens from 21% at P/E 4000 to 33% at
// P/E 6000 — aging raises the soft-sensing burden FlexLevel removes).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Fig. 6(b): response time vs LDPC-in-SSD across P/E ===\n\n");
  flex::bench::ExperimentHarness harness;

  TablePrinter table(
      {"P/E", "workload-avg normalized response", "reduction", "paper"});
  const struct {
    int pe;
    const char* paper;
  } points[] = {{4000, "-21%"}, {5000, "(interpolates)"}, {6000, "-33%"}};

  for (const auto& point : points) {
    double ratio_sum = 0.0;
    int count = 0;
    for (const auto workload : flex::trace::kAllWorkloads) {
      const auto ldpc = harness.run(workload, flex::ssd::Scheme::kLdpcInSsd,
                                    point.pe, requests);
      const auto flexlevel = harness.run(
          workload, flex::ssd::Scheme::kFlexLevel, point.pe, requests);
      ratio_sum += flexlevel.all_response.mean() / ldpc.all_response.mean();
      ++count;
    }
    const double ratio = ratio_sum / count;
    table.add_row({std::to_string(point.pe), TablePrinter::num(ratio, 3),
                   TablePrinter::percent(ratio - 1.0), point.paper});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper shape: the FlexLevel advantage must widen as P/E "
              "grows.\n");
  return 0;
}
