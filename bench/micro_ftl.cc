// Microbenchmarks of the FTL hot paths: mapped writes under GC pressure,
// lookups, and the write buffer.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ftl/page_mapping.h"
#include "ftl/write_buffer.h"

namespace {

using namespace flex;

ftl::FtlConfig bench_config() {
  ftl::FtlConfig cfg;
  cfg.spec.page_size_bytes = 16 * 1024;
  cfg.spec.pages_per_block = 64;
  cfg.spec.blocks_per_chip = 512;
  cfg.spec.chips = 4;
  cfg.over_provisioning = 0.27;
  cfg.gc_low_watermark = 8;
  return cfg;
}

void BM_FtlWriteChurn(benchmark::State& state) {
  ftl::PageMappingFtl ftl(bench_config());
  Rng rng(1);
  const std::uint64_t hot_set = ftl.logical_pages() / 4;
  // Warm up: fill the drive so GC is active during measurement.
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ftl.write(lpn, ftl::PageMode::kNormal, 0);
  }
  SimTime now = 1;
  for (auto _ : state) {
    ftl.write(rng.below(hot_set), ftl::PageMode::kNormal, now++);
  }
  state.counters["waf"] = ftl.stats().write_amplification();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWriteChurn)->Unit(benchmark::kNanosecond);

void BM_FtlLookup(benchmark::State& state) {
  ftl::PageMappingFtl ftl(bench_config());
  Rng rng(2);
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ftl.write(lpn, ftl::PageMode::kNormal, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.lookup(rng.below(ftl.logical_pages())));
  }
}
BENCHMARK(BM_FtlLookup);

void BM_FtlMigrate(benchmark::State& state) {
  ftl::PageMappingFtl ftl(bench_config());
  Rng rng(3);
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages() / 2; ++lpn) {
    ftl.write(lpn, ftl::PageMode::kNormal, 0);
  }
  SimTime now = 1;
  bool to_reduced = true;
  for (auto _ : state) {
    const std::uint64_t lpn = rng.below(ftl.logical_pages() / 2);
    ftl.migrate(lpn,
                to_reduced ? ftl::PageMode::kReduced : ftl::PageMode::kNormal,
                now++);
    to_reduced = !to_reduced;
  }
}
BENCHMARK(BM_FtlMigrate)->Unit(benchmark::kNanosecond);

void BM_WriteBuffer(benchmark::State& state) {
  ftl::WriteBuffer buffer(4096, 64);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.write(rng.below(100'000)));
  }
}
BENCHMARK(BM_WriteBuffer);

}  // namespace
