// Ablation of the progressive-sensing retry policy: plain ladder retry
// (start hard every time) vs the per-block sensing hint of LDPC-in-SSD's
// fine-grained scheme [2] (start at the block's last known depth), and how
// much headroom either leaves for FlexLevel's reduced-state pages.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "telemetry/telemetry.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Progressive-sensing retry policy ablation (P/E 6000) ===\n\n");
  flex::bench::ExperimentHarness harness;

  // Three custom-config runs per workload: ladder retry, retry with page
  // hint, FlexLevel. run_indexed fans them like any other cell sweep.
  const std::vector<flex::trace::Workload> workloads = {
      flex::trace::Workload::kWeb1, flex::trace::Workload::kFin2,
      flex::trace::Workload::kWin2};
  struct Variant {
    flex::trace::Workload workload;
    const char* policy;
    flex::ssd::SsdConfig cfg;
  };
  std::vector<Variant> variants;
  for (const auto workload : workloads) {
    auto cfg = flex::bench::ExperimentHarness::drive_config(
        flex::ssd::Scheme::kLdpcInSsd, 6000);
    cfg.age_model = flex::ssd::AgeModel::kStaticPerLba;
    variants.push_back({workload, "ladder", cfg});
    cfg.sensing_hint = true;
    variants.push_back({workload, "hint", cfg});
    auto flex_cfg = flex::bench::ExperimentHarness::drive_config(
        flex::ssd::Scheme::kFlexLevel, 6000);
    flex_cfg.age_model = flex::ssd::AgeModel::kStaticPerLba;
    variants.push_back({workload, "flexlevel", flex_cfg});
  }
  const bool collect =
      !outputs.trace_out.empty() || !outputs.metrics_out.empty();
  const auto results = flex::bench::run_indexed(
      variants.size(),
      [&](std::size_t i) {
        if (!collect) {
          return harness.run_with(variants[i].cfg, variants[i].workload,
                                  requests);
        }
        flex::telemetry::Telemetry telemetry;
        telemetry.pid = static_cast<std::int32_t>(i + 1);
        telemetry.trace = !outputs.trace_out.empty();
        return harness.run_with(variants[i].cfg, variants[i].workload,
                                requests, &telemetry);
      },
      jobs);

  TablePrinter table({"workload", "ladder retry (us)", "with page hint (us)",
                      "hint saving", "FlexLevel (us)"});
  std::size_t cell = 0;
  for (const auto workload : workloads) {
    const auto& plain = results[cell++];
    const auto& hinted = results[cell++];
    const auto& flexlevel = results[cell++];

    table.add_row(
        {flex::trace::workload_name(workload),
         TablePrinter::num(plain.all_response.mean() * 1e6, 4),
         TablePrinter::num(hinted.all_response.mean() * 1e6, 4),
         TablePrinter::percent(hinted.all_response.mean() /
                                   plain.all_response.mean() -
                               1.0),
         TablePrinter::num(flexlevel.all_response.mean() * 1e6, 4)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The block hint removes the failed-decode retries of the ladder but "
      "still pays the soft\nsensing itself; FlexLevel removes the soft "
      "sensing for the data that matters.\n");

  if (collect) {
    std::vector<flex::bench::RunLabel> runs;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      runs.push_back({flex::trace::workload_name(variants[i].workload) +
                          "/" + variants[i].policy,
                      static_cast<std::int32_t>(i + 1)});
    }
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, results);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, results);
    }
  }
  return 0;
}
