// Ablation of the progressive-sensing retry policy: plain ladder retry
// (start hard every time) vs the per-block sensing hint of LDPC-in-SSD's
// fine-grained scheme [2] (start at the block's last known depth), and how
// much headroom either leaves for FlexLevel's reduced-state pages.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Progressive-sensing retry policy ablation (P/E 6000) ===\n\n");
  flex::bench::ExperimentHarness harness;

  TablePrinter table({"workload", "ladder retry (us)", "with page hint (us)",
                      "hint saving", "FlexLevel (us)"});
  for (const auto workload :
       {flex::trace::Workload::kWeb1, flex::trace::Workload::kFin2,
        flex::trace::Workload::kWin2}) {
    auto cfg = flex::bench::ExperimentHarness::drive_config(
        flex::ssd::Scheme::kLdpcInSsd, 6000);
    cfg.age_model = flex::ssd::AgeModel::kStaticPerLba;
    const auto plain = harness.run_with(cfg, workload, requests);

    cfg.sensing_hint = true;
    const auto hinted = harness.run_with(cfg, workload, requests);

    auto flex_cfg = flex::bench::ExperimentHarness::drive_config(
        flex::ssd::Scheme::kFlexLevel, 6000);
    flex_cfg.age_model = flex::ssd::AgeModel::kStaticPerLba;
    const auto flexlevel = harness.run_with(flex_cfg, workload, requests);

    table.add_row(
        {flex::trace::workload_name(workload),
         TablePrinter::num(plain.all_response.mean() * 1e6, 4),
         TablePrinter::num(hinted.all_response.mean() * 1e6, 4),
         TablePrinter::percent(hinted.all_response.mean() /
                                   plain.all_response.mean() -
                               1.0),
         TablePrinter::num(flexlevel.all_response.mean() * 1e6, 4)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The block hint removes the failed-decode retries of the ladder but "
      "still pays the soft\nsensing itself; FlexLevel removes the soft "
      "sensing for the data that matters.\n");
  return 0;
}
