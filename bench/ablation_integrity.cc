// End-to-end data-integrity ablation (no paper figure — the DAC'15
// evaluation assumes the medium returns what was written; this bench
// exercises the SsdConfig::integrity payload-seal layer against the three
// silent-data-corruption fault kinds, on a bare drive and on a RAID-10
// array with replica failover + read-repair).
//
// Two sections:
//  * single drive — corruption-rate sweep with integrity off (clean
//    reference) and on: every host read re-verifies the page's CRC64 seal
//    against its carried payload, transient post-ECC flips are cured by
//    the recovery re-read, and persistent medium faults (misdirected
//    writes, torn relocations) are flagged as integrity mismatches. The
//    headline verdict is *zero undetected corruptions*: no read that
//    delivered wrong bytes passed verification.
//  * RAID-10 (4 drives, 2 copies) — the same sweep where a persistent
//    mismatch additionally fails over to the mirror copy and writes the
//    clean data back (read-repair). A bounded scrub loop (each page read
//    twice per pass, so round-robin steering hits both replicas) then
//    drives the array to convergence: every scrubbed page verifies on
//    *both* mirrors, i.e. the copies are byte-equal again.
//
// Stdout is fully deterministic and byte-identical across --jobs values;
// host wall-clock goes to BENCH_integrity.json only, along with the
// machine-checkable verdict block CI asserts on.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "host/array.h"
#include "telemetry/export.h"
#include "trace/trace.h"

namespace {

using flex::bench::ExperimentHarness;
using flex::host::ArrayConfig;
using flex::host::ArraySimulator;

struct Variant {
  std::string label;
  bool array = false;      ///< false: bare drive; true: 4-drive RAID-10
  bool integrity = false;  ///< SsdConfig::integrity.enabled
  /// Common rate for all three corruption kinds (silent bit flips,
  /// misdirected writes, torn relocations); 0 = fault-free.
  double rate = 0.0;
};

/// Everything one row contributes to the table and the JSON verdict.
struct Row {
  std::uint64_t reads = 0;
  double read_mean_s = 0.0;
  double read_p99_s = 0.0;
  std::uint64_t verified = 0;
  std::uint64_t mismatch = 0;
  std::uint64_t undetected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t misdirected = 0;
  std::uint64_t torn = 0;
  std::uint64_t repair_writes = 0;
  std::uint64_t failovers = 0;
  std::uint64_t read_repairs = 0;
  std::uint32_t scrub_passes = 0;
  std::uint64_t corrupt_after_scrub = 0;
  bool mirrors_equal = true;
  double wall_seconds = 0.0;
};

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void arm(flex::ssd::SsdConfig& cfg, const Variant& v) {
  cfg.integrity.enabled = v.integrity;
  if (v.rate > 0.0) {
    cfg.faults.enabled = true;
    cfg.faults.silent_corruption_rate = v.rate;
    cfg.faults.misdirected_write_rate = v.rate;
    cfg.faults.torn_relocation_rate = v.rate;
  }
}

Row run_single(const ExperimentHarness& harness, const Variant& v,
               std::uint64_t requests) {
  const auto start = std::chrono::steady_clock::now();
  flex::ssd::SsdConfig cfg = ExperimentHarness::drive_config(
      flex::ssd::Scheme::kLdpcInSsd, 6000);
  arm(cfg, v);
  const flex::ssd::SsdResults r =
      harness.run_with(cfg, flex::trace::Workload::kWeb1, requests);
  Row row;
  row.reads = r.read_response.count();
  row.read_mean_s = r.read_response.mean();
  row.read_p99_s = r.read_latency_hist.quantile(0.99);
  row.verified = r.integrity_verified_reads;
  row.mismatch = r.integrity_mismatch_reads;
  row.undetected = r.integrity_undetected_reads;
  row.recovered = r.integrity_recovered_reads;
  row.unrecovered = r.integrity_unrecovered_reads;
  row.misdirected = r.ftl.misdirected_writes;
  row.torn = r.ftl.torn_relocations;
  row.repair_writes = r.ftl.repair_writes;
  row.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return row;
}

/// Pages of [0, host_pages) with a replica that fails the medium audit.
/// A page passing on every replica means the mirrors are byte-equal in
/// host terms: each copy verifies as its drive's current acknowledged
/// generation, and the generations agree because both mirrors consumed
/// the identical host write stream. (Raw drive-local version *counters*
/// legitimately differ — preconditioning overwrites are drawn from each
/// drive's own RNG stream — so they are not compared here.)
std::uint64_t audit_array(const ArraySimulator& array,
                          std::uint64_t host_pages) {
  const flex::host::VolumeMapper& volume = array.volume();
  std::uint64_t corrupt = 0;
  for (std::uint64_t hpn = 0; hpn < host_pages; ++hpn) {
    const auto loc = volume.locate(hpn);
    for (std::uint32_t r = 0; r < volume.replicas(); ++r) {
      if (!array.drive(volume.drive_of(loc.group, r))
               .page_verifies(loc.dlpn)) {
        ++corrupt;
        break;
      }
    }
  }
  return corrupt;
}

Row run_array(const ExperimentHarness& harness, const Variant& v,
              std::uint64_t requests) {
  const auto start = std::chrono::steady_clock::now();
  ArrayConfig cfg;
  cfg.drives = 4;
  cfg.replication_factor = 2;
  cfg.stripe_pages = 64;
  cfg.queue_pair.doorbell_latency = 500;    // ns
  cfg.queue_pair.completion_latency = 500;  // ns
  cfg.interconnect.requesters = 2;
  cfg.interconnect.requester_link = {.latency = 200, .gb_per_s = 8.0};
  cfg.interconnect.switch_fabric = {.latency = 100, .gb_per_s = 16.0};
  cfg.interconnect.drive_link = {.latency = 200, .gb_per_s = 4.0};
  cfg.drive = ExperimentHarness::drive_config(flex::ssd::Scheme::kLdpcInSsd,
                                              6000);
  arm(cfg.drive, v);
  auto built = ArraySimulator::Builder(harness.normal_model(),
                                       harness.reduced_model())
                   .config(cfg)
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "integrity array config rejected (%s): %s\n",
                 v.label.c_str(), built.status().to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  ArraySimulator& array = **built;
  const std::uint64_t footprint =
      std::min<std::uint64_t>(40'000, array.logical_pages());
  array.prefill(footprint);

  // Main phase: 90% reads / 10% writes over the prefilled footprint at a
  // fixed offered rate. Misdirected writes land during prefill and here;
  // reads that hit them fail over to the mirror and trigger read-repair.
  constexpr flex::Duration kGap = 250'000;  // ns between arrivals (4k IOPS)
  std::vector<flex::trace::Request> trace;
  trace.reserve(requests);
  for (std::uint64_t i = 0; i < requests; ++i) {
    const std::uint64_t h = mix64(i ^ 0x1E67'D1C0ULL);
    trace.push_back({.arrival = static_cast<flex::SimTime>(i * kGap),
                     .is_write = (h % 10) == 0,
                     .lpn = mix64(h) % footprint,
                     .pages = 1});
  }
  array.run_segment(trace);
  Row row;
  {
    const flex::host::ArrayResults& r = array.results();
    row.reads = r.read_response.count();
    row.read_mean_s = r.read_response.mean();
    row.read_p99_s = r.read_latency_hist.quantile(0.99);
    for (const auto& d : r.drive) {
      row.verified += d.integrity_verified_reads;
      row.mismatch += d.integrity_mismatch_reads;
      row.undetected += d.integrity_undetected_reads;
      row.recovered += d.integrity_recovered_reads;
      row.unrecovered += d.integrity_unrecovered_reads;
    }
    // Lifetime FTL totals (prefill included — the prefill writes are
    // where most misdirections land on this read-heavy mix).
    for (std::uint32_t d = 0; d < array.drives(); ++d) {
      const flex::ftl::FtlStats& total = array.drive(d).ftl().stats();
      row.misdirected += total.misdirected_writes;
      row.torn += total.torn_relocations;
      row.repair_writes += total.repair_writes;
    }
    row.failovers = r.integrity_failovers;
    row.read_repairs = r.read_repairs;
  }

  // Scrub to convergence: each pass reads every footprint page twice
  // back-to-back, so round-robin replica steering serves both mirrors and
  // any persistently corrupt copy is repaired from its sibling. A repair
  // write can itself be misdirected, hence the (bounded) loop.
  if (v.integrity) {
    flex::SimTime scrub_base = static_cast<flex::SimTime>(requests * kGap);
    for (std::uint32_t pass = 0; pass < 5; ++pass) {
      if (audit_array(array, footprint) == 0) break;
      ++row.scrub_passes;
      scrub_base += 1'000'000'000'000LL;  // 1000 s of slack between passes
      std::vector<flex::trace::Request> scrub;
      scrub.reserve(footprint * 2);
      for (std::uint64_t hpn = 0; hpn < footprint; ++hpn) {
        for (int copy = 0; copy < 2; ++copy) {
          scrub.push_back(
              {.arrival = scrub_base +
                          static_cast<flex::SimTime>(
                              (hpn * 2 + static_cast<std::uint64_t>(copy)) *
                              kGap),
               .is_write = false,
               .lpn = hpn,
               .pages = 1});
        }
      }
      array.run_segment(scrub);
    }
    const flex::host::ArrayResults& r = array.results();
    row.failovers = r.integrity_failovers;
    row.read_repairs = r.read_repairs;
    row.corrupt_after_scrub = audit_array(array, footprint);
    row.mirrors_equal = row.corrupt_after_scrub == 0;
  }
  row.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return row;
}

/// run_indexed's work-stealing fan-out, typed to Row (the shared helper
/// is typed to SsdResults). Results land in index order, so output is
/// identical to a serial sweep.
std::vector<Row> run_rows(std::size_t count,
                          const std::function<Row(std::size_t)>& runner,
                          int jobs) {
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  std::vector<Row> results(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = runner(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      results[i] = runner(i);
    }
  };
  std::vector<std::thread> pool;
  const auto threads =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  return results;
}

void write_json(const std::string& path, std::uint64_t requests, int jobs,
                const std::vector<Variant>& variants,
                const std::vector<Row>& rows, bool verdict_ok) {
  using flex::telemetry::format_double;
  using flex::telemetry::json_escape;
  std::ofstream out(path);
  out << "{\n\"bench\":\"integrity\",\n"
      << "\"git_sha\":\"" << json_escape(FLEX_GIT_SHA) << "\",\n"
      << "\"config\":{\"requests_override\":" << requests
      << ",\"jobs\":" << jobs << "},\n"
      << "\"verdict_ok\":" << (verdict_ok ? "true" : "false")
      << ",\n\"runs\":[";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const Row& r = rows[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"label\":\"" << json_escape(v.label)
        << "\",\"array\":" << (v.array ? "true" : "false")
        << ",\"integrity\":" << (v.integrity ? "true" : "false")
        << ",\"corruption_rate\":" << format_double(v.rate)
        << ",\"reads\":" << r.reads
        << ",\"read_mean_s\":" << format_double(r.read_mean_s)
        << ",\"read_p99_s\":" << format_double(r.read_p99_s)
        << ",\"verified_reads\":" << r.verified
        << ",\"mismatch_reads\":" << r.mismatch
        << ",\"undetected_reads\":" << r.undetected
        << ",\"recovered\":" << r.recovered
        << ",\"unrecovered\":" << r.unrecovered
        << ",\"misdirected_writes\":" << r.misdirected
        << ",\"torn_relocations\":" << r.torn
        << ",\"repair_writes\":" << r.repair_writes
        << ",\"integrity_failovers\":" << r.failovers
        << ",\"read_repairs\":" << r.read_repairs
        << ",\"scrub_passes\":" << r.scrub_passes
        << ",\"corrupt_after_scrub\":" << r.corrupt_after_scrub
        << ",\"mirrors_equal\":" << (r.mirrors_equal ? "true" : "false")
        << ",\"wall_clock_s\":" << format_double(r.wall_seconds) << '}';
  }
  out << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 20'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== End-to-end integrity ablation (web-1 drive + RAID-10 array, "
      "%llu requests) ===\n\n",
      static_cast<unsigned long long>(requests));
  ExperimentHarness harness;

  const std::vector<Variant> variants = {
      {.label = "single/off (reference)"},
      {.label = "single/on clean", .integrity = true},
      {.label = "single/on 1e-4", .integrity = true, .rate = 1e-4},
      {.label = "single/on 1e-3", .integrity = true, .rate = 1e-3},
      {.label = "raid10/off (reference)", .array = true},
      {.label = "raid10/on 1e-4",
       .array = true,
       .integrity = true,
       .rate = 1e-4},
      {.label = "raid10/on 1e-3",
       .array = true,
       .integrity = true,
       .rate = 1e-3},
  };

  const std::vector<Row> rows = run_rows(
      variants.size(),
      [&](std::size_t i) {
        return variants[i].array ? run_array(harness, variants[i], requests)
                                 : run_single(harness, variants[i], requests);
      },
      jobs);

  TablePrinter table({"variant", "read mean ms", "read p99 ms", "verified",
                      "mismatch", "undetected", "cured", "persistent",
                      "repairs"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Row& r = rows[i];
    table.add_row({variants[i].label,
                   TablePrinter::num(r.read_mean_s * 1e3, 3),
                   TablePrinter::num(r.read_p99_s * 1e3, 3),
                   std::to_string(r.verified), std::to_string(r.mismatch),
                   std::to_string(r.undetected), std::to_string(r.recovered),
                   std::to_string(r.unrecovered),
                   std::to_string(variants[i].array ? r.read_repairs
                                                    : r.repair_writes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  TablePrinter array_table({"variant", "misdirected", "torn", "failovers",
                            "read repairs", "scrub passes",
                            "corrupt after scrub", "mirrors equal"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (!variants[i].array || !variants[i].integrity) continue;
    const Row& r = rows[i];
    array_table.add_row(
        {variants[i].label, std::to_string(r.misdirected),
         std::to_string(r.torn), std::to_string(r.failovers),
         std::to_string(r.read_repairs), std::to_string(r.scrub_passes),
         std::to_string(r.corrupt_after_scrub),
         r.mirrors_equal ? "yes" : "no"});
  }
  std::printf("%s\n", array_table.to_string().c_str());

  bool verdict_ok = true;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Row& r = rows[i];
    if (r.undetected != 0) verdict_ok = false;
    if (variants[i].integrity && variants[i].rate > 0.0 && r.mismatch == 0) {
      verdict_ok = false;  // armed corruption must surface as mismatches
    }
    if (variants[i].array && variants[i].integrity &&
        (r.corrupt_after_scrub != 0 || !r.mirrors_equal)) {
      verdict_ok = false;
    }
  }
  std::printf(
      "Verdict: %s. Every read that delivered wrong bytes was flagged "
      "(undetected = 0 on every row); transient post-ECC flips were cured "
      "by the recovery re-read, persistent medium faults failed over to "
      "the mirror copy, and the scrub loop restored both mirrors to "
      "verifying (byte-equal) state. The integrity layer costs no "
      "simulated latency when clean — seals ride the existing OOB path — "
      "so the on/off latency columns differ only where corruption forces "
      "recovery re-reads and failover hops.\n",
      verdict_ok ? "PASS" : "FAIL");

  write_json(outputs.bench_out.empty() ? "BENCH_integrity.json"
                                       : outputs.bench_out,
             requests, jobs, variants, rows, verdict_ok);
  return verdict_ok ? 0 : 1;
}
