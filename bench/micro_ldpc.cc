// Microbenchmarks of the LDPC codec on the paper's rate-8/9 4 KB code, plus
// an empirical cross-check of the sensing ladder: decode success at each
// ladder step's BER cap with the *real* min-sum decoder.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/decoder.h"
#include "ldpc/encoder.h"
#include "ldpc/qc_code.h"
#include "reliability/sensing_solver.h"

namespace {

using namespace flex;

const ldpc::QcLdpcCode& paper_code() {
  static const ldpc::QcLdpcCode code = ldpc::QcLdpcCode::paper_code();
  return code;
}

std::vector<std::uint8_t> random_message(Rng& rng) {
  std::vector<std::uint8_t> m(
      static_cast<std::size_t>(paper_code().k()));
  for (auto& b : m) b = static_cast<std::uint8_t>(rng.below(2));
  return m;
}

void BM_LdpcEncode(benchmark::State& state) {
  const ldpc::Encoder encoder(paper_code());
  Rng rng(1);
  const auto message = random_message(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          paper_code().k() / 8);
}
BENCHMARK(BM_LdpcEncode)->Unit(benchmark::kMicrosecond);

void BM_LdpcDecode(benchmark::State& state) {
  // Arg: raw BER in units of 1e-4; decoded with 6 extra sensing levels.
  const double ber = static_cast<double>(state.range(0)) * 1e-4;
  const ldpc::Encoder encoder(paper_code());
  const ldpc::Decoder decoder(paper_code());
  const ldpc::SensingChannel channel(ber, 6);
  Rng rng(2);
  const auto cw = encoder.encode(random_message(rng));
  const auto llrs = channel.transmit(cw, rng);
  std::int64_t iterations_total = 0;
  for (auto _ : state) {
    const auto result = decoder.decode(llrs);
    iterations_total += result.iterations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["minsum_iters"] = benchmark::Counter(
      static_cast<double>(iterations_total),
      benchmark::Counter::kAvgIterations);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          paper_code().k() / 8);
}
BENCHMARK(BM_LdpcDecode)->Arg(10)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMicrosecond);

// Ladder validation: at each (cap BER, levels) point of the sensing
// requirement table, the real decoder should succeed; with one step fewer
// levels at the same BER it should do worse. Reported as counters.
void BM_LadderValidation(benchmark::State& state) {
  const reliability::SensingRequirement ladder;
  const auto& step =
      ladder.steps()[static_cast<std::size_t>(state.range(0))];
  const ldpc::Encoder encoder(paper_code());
  const ldpc::Decoder decoder(paper_code());
  Rng rng(3);
  int attempts = 0;
  int successes = 0;
  for (auto _ : state) {
    const ldpc::SensingChannel channel(step.max_raw_ber, step.extra_levels);
    const auto cw = encoder.encode(random_message(rng));
    const auto llrs = channel.transmit(cw, rng);
    const auto result = decoder.decode(llrs);
    ++attempts;
    if (result.success && result.bits == cw) ++successes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["success_rate"] =
      attempts == 0 ? 0.0 : static_cast<double>(successes) / attempts;
  state.counters["cap_ber_x1e4"] = step.max_raw_ber * 1e4;
  state.counters["levels"] = step.extra_levels;
}
BENCHMARK(BM_LadderValidation)->DenseRange(0, 4)->Iterations(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
