// Shared harness for the system-level benches (Fig. 6(a)/(b), Fig. 7,
// pool-size ablation): builds the scaled drive, the per-mode BER models,
// and runs (workload, scheme, P/E) combinations.
//
// Scaling note (documented in EXPERIMENTS.md): the paper simulates a
// 256 GB drive; we keep Table 6's page/block geometry and timing but shrink
// the chip count so a full 7-workload x 4-scheme sweep runs in seconds.
// Over-provisioning (27%), the ReducedCell pool share (64 GB / 256 GB =
// 25% of capacity) and all latency parameters are preserved as ratios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "reliability/ber_model.h"
#include "ssd/simulator.h"
#include "trace/workloads.h"

namespace flex::bench {

class ExperimentHarness {
 public:
  /// Builds the BER models (one-off Monte-Carlo inside).
  ExperimentHarness();

  /// Runs one workload under one scheme at the given pre-aged P/E count.
  /// `requests_override` (0 = use the workload default) trims runtime for
  /// sweeps. `age_model` selects between the paper's static
  /// per-LBA storage-time axis (its Fig. 6 setting) and physically
  /// tracked per-page ages.
  ssd::SsdResults run(trace::Workload workload, ssd::Scheme scheme,
                      int pe_cycles, std::uint64_t requests_override = 0,
                      ssd::AgeModel age_model = ssd::AgeModel::kStaticPerLba,
                      std::uint64_t pool_override_pages = 0);

  /// Runs an arbitrary SsdConfig under the harness methodology (scaled
  /// arrival rate, standing population, preconditioning, warmup pass).
  ssd::SsdResults run_with(ssd::SsdConfig config, trace::Workload workload,
                           std::uint64_t requests_override = 0);

  const reliability::BerModel& normal_model() const { return *normal_; }
  const reliability::BerModel& reduced_model() const { return *reduced_; }

  /// Drive geometry shared by every scheme run.
  static ssd::SsdConfig drive_config(ssd::Scheme scheme, int pe_cycles);

 private:
  // unique_ptrs because BerModel is neither copyable nor default-
  // constructible (it owns a one-off Monte-Carlo calibration).
  std::unique_ptr<reliability::BerModel> normal_;
  std::unique_ptr<reliability::BerModel> reduced_;
};

}  // namespace flex::bench
