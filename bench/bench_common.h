// Shared harness for the system-level benches (Fig. 6(a)/(b), Fig. 7,
// pool-size ablation): builds the scaled drive, the per-mode BER models,
// and runs (workload, scheme, P/E) combinations — serially or fanned
// across a thread pool (`--jobs N` / FLEX_BENCH_JOBS). Parallelism is safe
// because each cell owns its simulator and shares only the const
// BerModels; results are deterministic and independent of the job count.
//
// Scaling note (documented in EXPERIMENTS.md): the paper simulates a
// 256 GB drive; we keep Table 6's page/block geometry and timing but shrink
// the chip count so a full 7-workload x 4-scheme sweep runs in seconds.
// Over-provisioning (27%), the ReducedCell pool share (64 GB / 256 GB =
// 25% of capacity) and all latency parameters are preserved as ratios.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "reliability/ber_model.h"
#include "ssd/simulator.h"
#include "telemetry/export.h"
#include "trace/workloads.h"
#include "workload/engine.h"

namespace flex::bench {

/// One independent experiment cell of a sweep.
struct CellSpec {
  trace::Workload workload = trace::Workload::kFin2;
  ssd::Scheme scheme = ssd::Scheme::kLdpcInSsd;
  int pe_cycles = 6000;
  /// 0 = use the workload default request count.
  std::uint64_t requests_override = 0;
  ssd::AgeModel age_model = ssd::AgeModel::kStaticPerLba;
  /// 0 = keep the drive default ReducedCell pool size.
  std::uint64_t pool_override_pages = 0;
  /// Attach a telemetry context for the measured pass (warmup excluded);
  /// its snapshot lands in SsdResults::metrics. Observation-only: the
  /// simulated results are bit-identical either way.
  bool collect_metrics = false;
  /// Additionally record per-request spans (implies a metrics context);
  /// they land in SsdResults::spans.
  bool collect_spans = false;
  /// Chrome-trace process id for this cell's spans (one track per cell).
  std::int32_t telemetry_pid = 0;
};

class ExperimentHarness {
 public:
  /// Builds the BER models (one-off Monte-Carlo inside).
  ExperimentHarness();

  /// Runs one workload under one scheme at the given pre-aged P/E count.
  /// `requests_override` (0 = use the workload default) trims runtime for
  /// sweeps. `age_model` selects between the paper's static
  /// per-LBA storage-time axis (its Fig. 6 setting) and physically
  /// tracked per-page ages. Thread-safe: the shared BerModels are
  /// immutable and every run owns its simulator.
  ssd::SsdResults run(trace::Workload workload, ssd::Scheme scheme,
                      int pe_cycles, std::uint64_t requests_override = 0,
                      ssd::AgeModel age_model = ssd::AgeModel::kStaticPerLba,
                      std::uint64_t pool_override_pages = 0) const;

  ssd::SsdResults run(const CellSpec& cell) const;

  /// Runs an arbitrary SsdConfig under the harness methodology (scaled
  /// arrival rate, standing population, preconditioning, warmup pass).
  /// `telemetry` (optional) is attached for the measured pass only, so
  /// its metrics and spans cover exactly the measurement window.
  ssd::SsdResults run_with(ssd::SsdConfig config, trace::Workload workload,
                           std::uint64_t requests_override = 0,
                           telemetry::Telemetry* telemetry = nullptr) const;

  /// Open-loop analogue of run_with(): drives an arbitrary SsdConfig from
  /// a workload-engine arrival stream instead of a pre-generated trace.
  /// The same methodology applies — 80% standing population, a warmup
  /// window (the engine's stream continues seamlessly into the measured
  /// window, so queues stay primed), measurements reset in between and
  /// telemetry attached for the measured pass only. `warmup_requests` /
  /// `measure_requests` bound the two windows (measure_requests must be
  /// nonzero; an open loop never drains on its own).
  ssd::SsdResults run_open_loop(ssd::SsdConfig config,
                                const workload::EngineConfig& engine,
                                std::uint64_t warmup_requests,
                                std::uint64_t measure_requests,
                                telemetry::Telemetry* telemetry
                                  = nullptr) const;

  const reliability::BerModel& normal_model() const { return *normal_; }
  const reliability::BerModel& reduced_model() const { return *reduced_; }

  /// Drive geometry shared by every scheme run.
  static ssd::SsdConfig drive_config(ssd::Scheme scheme, int pe_cycles);

 private:
  // unique_ptrs because BerModel is neither copyable nor default-
  // constructible (it owns a one-off Monte-Carlo calibration).
  std::unique_ptr<reliability::BerModel> normal_;
  std::unique_ptr<reliability::BerModel> reduced_;
};

/// Runs `count` independent experiments across `jobs` worker threads
/// (jobs <= 1: serial, in index order on the calling thread; jobs == 0:
/// one per hardware thread). `runner(i)` must be safe to call from any
/// thread; results come back in index order regardless of completion
/// order, so output is identical to a serial sweep.
std::vector<ssd::SsdResults> run_indexed(
    std::size_t count,
    const std::function<ssd::SsdResults(std::size_t)>& runner, int jobs);

/// Fans a list of cells across `jobs` threads (see run_indexed).
std::vector<ssd::SsdResults> run_cells(const ExperimentHarness& harness,
                                       const std::vector<CellSpec>& cells,
                                       int jobs);

/// Extracts `--jobs N` (or `-j N`) from argv, compacting it, and falls
/// back to the FLEX_BENCH_JOBS environment variable; defaults to 1.
/// 0 means "one job per hardware thread".
int parse_jobs(int* argc, char** argv);

/// Telemetry/export destinations for a bench run (empty string = off).
struct OutputOptions {
  std::string trace_out;    ///< Chrome trace-event JSON
  std::string metrics_out;  ///< metrics JSONL (per cell + merged)
  std::string bench_out;    ///< BENCH_*.json override (benches default it)
};

/// Extracts `--trace-out PATH`, `--metrics-out PATH` and `--bench-out
/// PATH` (also the `--flag=PATH` spellings) from argv, compacting it.
OutputOptions parse_outputs(int* argc, char** argv);

/// "workload/scheme/peNNNN" identity of a cell (trace process names,
/// metrics line tags, bench JSON rows).
std::string cell_label(const CellSpec& cell);

/// Label + Chrome process id of one telemetry-collecting run, for benches
/// whose variants are not CellSpecs (custom-config ablations).
struct RunLabel {
  std::string label;
  std::int32_t pid = 0;
};

/// Writes one Chrome trace-event file combining every run's spans, one
/// process track per run.
void write_trace_file(const std::string& path,
                      const std::vector<RunLabel>& runs,
                      const std::vector<ssd::SsdResults>& results);
void write_trace_file(const std::string& path,
                      const std::vector<CellSpec>& cells,
                      const std::vector<ssd::SsdResults>& results);

/// Writes metrics JSONL: every run's snapshot tagged with its label (in
/// index order), then the fold of all snapshots tagged "_merged" — the
/// deterministic-merge artifact that must not depend on --jobs.
void write_metrics_file(const std::string& path,
                        const std::vector<RunLabel>& runs,
                        const std::vector<ssd::SsdResults>& results);
void write_metrics_file(const std::string& path,
                        const std::vector<CellSpec>& cells,
                        const std::vector<ssd::SsdResults>& results);

/// Writes the machine-readable BENCH_<name>.json summary: git SHA, drive
/// config, and per-cell mean/p99/latency-breakdown rows (plus read/write
/// request counts and host wall-clock per cell).
void write_bench_json(const std::string& path, const std::string& bench,
                      std::uint64_t requests_override, int jobs,
                      const std::vector<CellSpec>& cells,
                      const std::vector<ssd::SsdResults>& results);

/// RunLabel-keyed variant for benches whose rows are not CellSpecs (the
/// QoS ablation): per-run latency/QoS-gauge rows, each with a "tenants"
/// array carrying per-tenant mean/p99/p999 and admission rejections.
void write_bench_json(const std::string& path, const std::string& bench,
                      std::uint64_t requests_override, int jobs,
                      const std::vector<RunLabel>& runs,
                      const std::vector<ssd::SsdResults>& results);

}  // namespace flex::bench
