// Reproduces paper Fig. 7: endurance impact of LevelAdjust+AccessEval at
// P/E 6000 relative to LDPC-in-SSD —
//   (a) write-count increase  (paper: +15% average, largest on web-1/2
//       because their absolute write counts are tiny),
//   (b) erase-count increase  (paper: +13% average),
//   (c) lifetime              (paper: -6% average, softened by the scheme
//       only activating past P/E ~4000).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "ssd/lifetime.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Fig. 7: endurance impact at P/E 6000 ===\n\n");
  flex::bench::ExperimentHarness harness;

  std::vector<flex::bench::CellSpec> cells;
  for (const auto workload : flex::trace::kAllWorkloads) {
    for (const auto scheme : {flex::ssd::Scheme::kLdpcInSsd,
                              flex::ssd::Scheme::kFlexLevel}) {
      cells.push_back({.workload = workload,
                       .scheme = scheme,
                       .pe_cycles = 6000,
                       .requests_override = requests,
                       .collect_metrics = !outputs.metrics_out.empty(),
                       .collect_spans = !outputs.trace_out.empty(),
                       .telemetry_pid =
                           static_cast<std::int32_t>(cells.size() + 1)});
    }
  }
  const auto results = flex::bench::run_cells(harness, cells, jobs);

  TablePrinter table({"workload", "write increase", "erase increase",
                      "lifetime"});
  double write_sum = 0.0;
  double erase_sum = 0.0;
  double life_sum = 0.0;
  int count = 0;
  std::size_t cell = 0;

  for (const auto workload : flex::trace::kAllWorkloads) {
    const auto& ldpc = results[cell++];
    const auto& flexlevel = results[cell++];

    const double write_ratio =
        static_cast<double>(flexlevel.ftl.nand_writes) /
        static_cast<double>(std::max<std::uint64_t>(ldpc.ftl.nand_writes, 1));
    const double erase_ratio =
        static_cast<double>(flexlevel.ftl.nand_erases) /
        static_cast<double>(std::max<std::uint64_t>(ldpc.ftl.nand_erases, 1));
    const double lifetime =
        flex::ssd::lifetime_factor(std::max(erase_ratio, 1.0));

    table.add_row({flex::trace::workload_name(workload),
                   TablePrinter::percent(write_ratio - 1.0),
                   TablePrinter::percent(erase_ratio - 1.0),
                   TablePrinter::percent(lifetime - 1.0)});
    write_sum += write_ratio - 1.0;
    erase_sum += erase_ratio - 1.0;
    life_sum += lifetime - 1.0;
    ++count;
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Averages (paper targets):\n");
  std::printf("  write count: %s  (paper: +15%%)\n",
              TablePrinter::percent(write_sum / count).c_str());
  std::printf("  erase count: %s  (paper: +13%%)\n",
              TablePrinter::percent(erase_sum / count).c_str());
  std::printf("  lifetime:    %s  (paper: -6%%)\n",
              TablePrinter::percent(life_sum / count).c_str());
  std::printf("\n(LDPC-in-SSD itself adds no writes or erases — the deltas "
              "come from AccessEval's pool migrations.)\n");

  if (!outputs.trace_out.empty()) {
    flex::bench::write_trace_file(outputs.trace_out, cells, results);
  }
  if (!outputs.metrics_out.empty()) {
    flex::bench::write_metrics_file(outputs.metrics_out, cells, results);
  }
  return 0;
}
