// Reproduces paper Fig. 6(a): normalized overall average response time of
// the four storage systems over the seven workloads at P/E 6000.
// Values are normalized per workload to the baseline system, as in the
// paper's figure.
//
// The primary table uses the paper's evaluation assumption (per-read BER
// from P/E and a static per-LBA storage time); a second table repeats the
// experiment with physically tracked per-page ages, where rewritten data
// is fresh — a more detailed model that shrinks FlexLevel's margin on
// write-heavy workloads (discussed in EXPERIMENTS.md).
//
// Pass `--jobs N` (or set FLEX_BENCH_JOBS) to fan the 28 independent
// (workload, scheme) cells across N threads; results are identical to a
// serial run. `--trace-out t.json` records per-request latency-breakdown
// spans of the primary table's measured window (Chrome trace-event
// format); `--metrics-out m.jsonl` dumps its metrics snapshots. Both are
// observation-only: stdout is byte-identical with or without them. A
// machine-readable summary always lands in BENCH_fig6a.json
// (`--bench-out` overrides the path).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "nand/geometry.h"

namespace {

std::vector<flex::bench::CellSpec> make_cells(
    flex::ssd::AgeModel age_model, std::uint64_t requests,
    const flex::bench::OutputOptions& outputs) {
  const std::vector<flex::ssd::Scheme> schemes = {
      flex::ssd::Scheme::kBaseline, flex::ssd::Scheme::kLdpcInSsd,
      flex::ssd::Scheme::kLevelAdjustOnly, flex::ssd::Scheme::kFlexLevel};
  std::vector<flex::bench::CellSpec> cells;
  for (const auto workload : flex::trace::kAllWorkloads) {
    for (const auto scheme : schemes) {
      cells.push_back(
          {.workload = workload,
           .scheme = scheme,
           .pe_cycles = 6000,
           .requests_override = requests,
           .age_model = age_model,
           .collect_metrics = !outputs.metrics_out.empty(),
           .collect_spans = !outputs.trace_out.empty(),
           .telemetry_pid = static_cast<std::int32_t>(cells.size() + 1)});
    }
  }
  return cells;
}

void print_table(const std::vector<flex::ssd::SsdResults>& results) {
  using flex::TablePrinter;
  TablePrinter table({"workload", "baseline", "LDPC-in-SSD",
                      "LevelAdjust-only", "LevelAdjust+AccessEval"});
  double flex_vs_base = 0.0;
  double flex_vs_ldpc = 0.0;
  double lvladj_vs_ldpc = 0.0;
  int workloads = 0;
  std::size_t cell = 0;

  for (const auto workload : flex::trace::kAllWorkloads) {
    std::vector<double> means;
    for (std::size_t s = 0; s < 4; ++s) {
      means.push_back(results[cell++].all_response.mean());
    }
    const double base = means[0];
    table.add_row({flex::trace::workload_name(workload), "1.00",
                   TablePrinter::num(means[1] / base, 3),
                   TablePrinter::num(means[2] / base, 3),
                   TablePrinter::num(means[3] / base, 3)});
    flex_vs_base += 1.0 - means[3] / means[0];
    flex_vs_ldpc += 1.0 - means[3] / means[1];
    lvladj_vs_ldpc += means[2] / means[1] - 1.0;
    ++workloads;
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Averages across workloads (paper targets in parentheses):\n");
  std::printf("  LevelAdjust+AccessEval vs baseline:    %s reduction "
              "(paper: -66%%)\n",
              TablePrinter::percent(-flex_vs_base / workloads).c_str());
  std::printf("  LevelAdjust+AccessEval vs LDPC-in-SSD: %s reduction "
              "(paper: -33%%)\n",
              TablePrinter::percent(-flex_vs_ldpc / workloads).c_str());
  std::printf("  LevelAdjust-only vs LDPC-in-SSD:       %s overhead "
              "(paper: +27%%)\n\n",
              TablePrinter::percent(lvladj_vs_ldpc / workloads).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  // Optional request-count override for quick runs.
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  {
    const flex::nand::NandSpec spec;
    std::printf("=== Table 6: MLC NAND specification in effect ===\n");
    std::printf("page %u KB, block %u KB, program %.0f us, read %.0f us, "
                "erase %.0f ms\n\n",
                spec.page_size_bytes / 1024,
                spec.pages_per_block * spec.page_size_bytes / 1024,
                flex::to_micros(spec.program_latency),
                flex::to_micros(spec.read_latency),
                flex::to_millis(spec.erase_latency));
  }

  flex::bench::ExperimentHarness harness;

  std::printf("=== Fig. 6(a): normalized overall response time, P/E 6000 "
              "(paper's static storage-time axis, 1 day .. 1 month) ===\n\n");
  // Telemetry (if requested) covers the primary, paper-setting table.
  const auto cells =
      make_cells(flex::ssd::AgeModel::kStaticPerLba, requests, outputs);
  const auto results = flex::bench::run_cells(harness, cells, jobs);
  print_table(results);

  std::printf("=== Extension: same experiment with physically tracked "
              "per-page ages (rewritten data is fresh) ===\n\n");
  const auto physical_cells = make_cells(flex::ssd::AgeModel::kPhysical,
                                         requests, flex::bench::OutputOptions{});
  print_table(flex::bench::run_cells(harness, physical_cells, jobs));

  if (!outputs.trace_out.empty()) {
    flex::bench::write_trace_file(outputs.trace_out, cells, results);
  }
  if (!outputs.metrics_out.empty()) {
    flex::bench::write_metrics_file(outputs.metrics_out, cells, results);
  }
  flex::bench::write_bench_json(
      outputs.bench_out.empty() ? "BENCH_fig6a.json" : outputs.bench_out,
      "fig6a", requests, jobs, cells, results);
  return 0;
}
