// Fault-injection / graceful-degradation ablation (no paper figure — the
// DAC'15 evaluation assumes a defect-free drive; the fault model follows
// the JEDEC-style grown-defect lifecycle, see faults/fault_injector.h).
//
// Web-1 (99% reads, Zipf 0.9) is the paper's headline workload, so it is
// the right place to ask what happens when the drive underneath it starts
// failing: program-status failures burn frontier pages and retire their
// blocks, erase failures and grown defects remove blocks outright, and
// every retirement shrinks the usable over-provisioning. The sweep raises
// the per-op defect rate across four decades and reports how far host
// latency, write amplification, and the retirement ledger drift from the
// fault-free reference. A second table runs FlexLevel at the same rates:
// retirements there also shrink the ReducedCell pool, so the graceful-
// degradation path (pool eviction + migration back to normal cells) shows
// up as a falling pool gauge rather than a latency cliff.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "telemetry/telemetry.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 100'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== Fault-injection ablation (web-1, P/E 6000, %llu requests) ===\n\n",
      static_cast<unsigned long long>(requests));
  flex::bench::ExperimentHarness harness;

  struct Variant {
    std::string label;
    flex::ssd::Scheme scheme = flex::ssd::Scheme::kLdpcInSsd;
    double rate = 0.0;  ///< program = erase = grown-defect rate; 0 = off
    /// Accelerated read-disturb with no refresh: drives the read-hot tail
    /// past the deepest ladder step so the recovery re-read has
    /// uncorrectable reads to adjudicate.
    bool disturb = false;
    double rescue = 0.9;  ///< recovery re-read success probability
  };
  // One knob on purpose: program, erase, and grown-defect rates move
  // together so the sweep reads as "how broken is the flash", not as a
  // 3-way factorial. The top rate is bounded by the drive itself:
  // preconditioning alone programs the full logical space, so a per-program
  // fail rate much past 1e-3 retires more blocks than the 27% over-
  // provisioning holds and the drive (correctly) dies of over-commitment.
  std::vector<Variant> variants = {
      {.label = "fault-free (reference)"},
      {.label = "defect rate 1e-5", .rate = 1e-5},
      {.label = "defect rate 1e-4", .rate = 1e-4},
      {.label = "defect rate 3e-4", .rate = 3e-4},
      {.label = "defect rate 1e-3", .rate = 1e-3},
      {.label = "disturb, faults off", .disturb = true},
      {.label = "disturb, rescue 0.9",
       .rate = 1e-4,
       .disturb = true,
       .rescue = 0.9},
      {.label = "disturb, rescue 0.5",
       .rate = 1e-4,
       .disturb = true,
       .rescue = 0.5},
      {.label = "FlexLevel fault-free",
       .scheme = flex::ssd::Scheme::kFlexLevel},
      {.label = "FlexLevel @ 1e-4",
       .scheme = flex::ssd::Scheme::kFlexLevel,
       .rate = 1e-4},
      {.label = "FlexLevel @ 1e-3",
       .scheme = flex::ssd::Scheme::kFlexLevel,
       .rate = 1e-3},
  };

  const bool collect =
      !outputs.trace_out.empty() || !outputs.metrics_out.empty();
  const auto all = flex::bench::run_indexed(
      variants.size(),
      [&](std::size_t i) {
        flex::ssd::SsdConfig cfg =
            flex::bench::ExperimentHarness::drive_config(variants[i].scheme,
                                                         6000);
        if (variants[i].rate > 0.0) {
          cfg.faults.enabled = true;
          cfg.faults.program_fail_rate = variants[i].rate;
          cfg.faults.erase_fail_rate = variants[i].rate;
          cfg.faults.grown_defect_rate = variants[i].rate;
          cfg.faults.read_retry_rescue = variants[i].rescue;
        }
        if (variants[i].disturb) {
          cfg.read_disturb.enabled = true;
          cfg.read_disturb.model.vth_shift_per_read = 1.8e-4;
        }
        if (!collect) {
          return harness.run_with(cfg, flex::trace::Workload::kWeb1,
                                  requests);
        }
        flex::telemetry::Telemetry telemetry;
        telemetry.pid = static_cast<std::int32_t>(i + 1);
        telemetry.trace = !outputs.trace_out.empty();
        return harness.run_with(cfg, flex::trace::Workload::kWeb1, requests,
                                &telemetry);
      },
      jobs);
  const auto& reference = all.front();

  const auto waf = [](const flex::ssd::SsdResults& r) {
    return r.ftl.host_writes == 0
               ? 0.0
               : static_cast<double>(r.ftl.nand_writes) /
                     static_cast<double>(r.ftl.host_writes);
  };

  TablePrinter table({"variant", "norm mean read", "norm p99 read", "WAF",
                      "retired blocks"});
  const double ref_mean = reference.read_response.mean();
  const double ref_p99 = reference.read_latency_hist.quantile(0.99);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& r = all[i];
    table.add_row(
        {variants[i].label,
         TablePrinter::num(r.read_response.mean() / ref_mean, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) / ref_p99, 3),
         TablePrinter::num(waf(r), 3), std::to_string(r.retired_blocks)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Block retirements spend over-provisioning, so GC runs hotter (WAF) "
      "long before host latency moves: web-1's read tail is insulated until "
      "the free-block deficit backs up into the write path. Retired counts "
      "include prefill/preconditioning casualties — on this read-heavy "
      "workload that is where nearly all programs (and hence program "
      "fails) happen.\n\n");

  TablePrinter recovery_table({"variant", "uncorrectable", "recovered",
                               "data loss", "norm p99 read"});
  const double disturb_p99 = all[5].read_latency_hist.quantile(0.99);
  for (std::size_t i = 5; i < 8; ++i) {
    const auto& r = all[i];
    recovery_table.add_row(
        {variants[i].label, std::to_string(r.uncorrectable_reads),
         std::to_string(r.recovered_reads),
         std::to_string(r.data_loss_reads),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) / disturb_p99,
                           3)});
  }
  std::printf("%s\n", recovery_table.to_string().c_str());
  std::printf(
      "Recovery ladder: unchecked disturb pushes read-hot pages past the "
      "deepest ladder step. With faults off those reads are merely counted; "
      "with the injector on, each one pays a deepest-sensing re-read and is "
      "then adjudicated — rescued or declared data loss at the configured "
      "rescue probability.\n\n");

  TablePrinter pool_table({"variant", "norm mean read", "pool capacity",
                           "pool pages", "to-normal migrations", "retired"});
  const double flex_ref = all[8].read_response.mean();
  for (std::size_t i = 8; i < variants.size(); ++i) {
    const auto& r = all[i];
    pool_table.add_row(
        {variants[i].label,
         TablePrinter::num(r.read_response.mean() / flex_ref, 3),
         std::to_string(r.pool_capacity_pages),
         std::to_string(r.pool_pages),
         std::to_string(r.migrations_to_normal),
         std::to_string(r.retired_blocks)});
  }
  std::printf("%s\n", pool_table.to_string().c_str());
  std::printf(
      "FlexLevel degrades gracefully: each retired block shrinks the "
      "ReducedCell pool budget (reduced pages cost 1/(1-f) physical pages, "
      "so a retired block forfeits pages_per_block * f/(1-f) of budget), "
      "evicting the coldest pool members back to normal cells instead of "
      "overcommitting a smaller drive. Latency gives back a little of the "
      "fast-pool win; nothing is lost.\n");

  if (collect) {
    std::vector<flex::bench::RunLabel> runs;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      runs.push_back(
          {"web-1/" + variants[i].label, static_cast<std::int32_t>(i + 1)});
    }
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, all);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, all);
    }
  }
  return 0;
}
