// Ablation of §4.2's design choice: *non-uniform* noise margins versus the
// basic (uniform-margin) LevelAdjust, and the per-level error distribution
// that motivates NUNMA (paper: ~78% of retention errors at level 2, ~15% at
// level 1 under basic LevelAdjust).
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "reliability/ber_engine.h"
#include "reliability/ber_model.h"

int main() {
  using flex::TablePrinter;
  flex::Rng rng(0xAB1A);
  const flex::flexlevel::ReduceCodeMapper reduce;
  const flex::reliability::RetentionModel retention;

  // Per-level retention error distribution of basic LevelAdjust — the
  // observation that justifies NUNMA.
  {
    flex::reliability::BerEngine engine(
        {.wordlines = 64, .bitlines = 512, .rounds = 8,
         .coupling = {.gamma_x = 0.0, .gamma_y = 0.0, .gamma_xy = 0.0}});
    const auto report = engine.measure(
        flex::flexlevel::nunma_config(flex::flexlevel::NunmaScheme::kBasic),
        reduce, &retention, 6000, flex::kMonth, rng);
    const double total = static_cast<double>(std::accumulate(
        report.cell_errors_by_level.begin(),
        report.cell_errors_by_level.end(), std::uint64_t{0}));
    std::printf("=== Retention-error distribution, basic LevelAdjust ===\n");
    std::printf("(paper observation: ~78%% at level 2, ~15%% at level 1)\n\n");
    for (std::size_t l = 0; l < report.cell_errors_by_level.size(); ++l) {
      std::printf("  level %zu: %5.1f%%\n", l,
                  100.0 * report.cell_errors_by_level[l] / total);
    }
    std::printf("\n");
  }

  // Margin-allocation ablation: uniform vs the three non-uniform configs.
  std::printf("=== Margin allocation ablation (retention BER, P/E 6000) ===\n\n");
  const flex::reliability::BerEngine::Config mc{
      .wordlines = 32, .bitlines = 128, .rounds = 1, .coupling = {}};
  TablePrinter table({"scheme", "verify1", "verify2", "1 week", "1 month",
                      "C2C BER"});
  for (const auto scheme :
       {flex::flexlevel::NunmaScheme::kBasic,
        flex::flexlevel::NunmaScheme::kNunma1,
        flex::flexlevel::NunmaScheme::kNunma2,
        flex::flexlevel::NunmaScheme::kNunma3}) {
    const auto cfg = flex::flexlevel::nunma_config(scheme);
    const flex::reliability::BerModel model(cfg, reduce, retention, mc, rng);
    table.add_row({cfg.name(), TablePrinter::num(cfg.verify(1)),
                   TablePrinter::num(cfg.verify(2)),
                   TablePrinter::num(model.retention_ber(6000, flex::kWeek)),
                   TablePrinter::num(model.retention_ber(6000, flex::kMonth)),
                   TablePrinter::num(model.c2c_ber())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Takeaway: pushing verify2 up buys retention margin where the "
              "errors are; the C2C cost shows up at the level-1/level-2 "
              "boundary (NUNMA 3 column).\n");
  return 0;
}
