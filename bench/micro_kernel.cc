// Hot-path microbench for the discrete-event kernel and the end-to-end
// simulator: the perf-regression tripwire behind the CI `perf-smoke` job.
//
// Reports three numbers (stdout table + BENCH_micro_kernel.json):
//   * events/sec — raw EventQueue schedule+fire throughput under the
//     simulator's real scheduling mix: a monotone pre-scheduled arrival
//     stream (FIFO lane) whose callbacks schedule out-of-order
//     completions (heap lane), exactly like run_segment + chip service.
//   * allocations/event — operator new calls per fired event in the
//     steady state (after one warmup round that grows the slab and lane
//     arrays to their high-water mark). The kernel's memory contract says
//     this is 0.0: callbacks live inline in POD slab records and every
//     container is recycled, never shrunk.
//   * requests/sec — end-to-end simulated requests per wall-second for
//     one fig6a cell (fin-2 / LevelAdjust+AccessEval @ P/E 6000),
//     including FTL, scheduler, BER cache and telemetry-off read path.
//
// Wall-clock throughput is machine-dependent; the committed
// BENCH_micro_kernel.json is the reference point the CI perf-smoke job
// compares against with a generous (25%) regression margin. Simulated
// *results* remain byte-identical regardless — this bench guards speed,
// not correctness.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "common/alloc_counter.h"
#include "ssd/event_queue.h"

FLEX_DEFINE_COUNTING_ALLOCATOR()

namespace {

#ifndef FLEX_GIT_SHA
#define FLEX_GIT_SHA "unknown"
#endif

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One round of the simulator's scheduling mix: `arrivals` monotone
/// events appended to the FIFO lane; each firing schedules a completion
/// 1.5 us out — behind later pending arrivals, so it lands in the heap
/// lane. Fires 2 * arrivals events total.
void run_round(flex::ssd::EventQueue& queue, std::uint64_t arrivals) {
  const flex::SimTime base = queue.now();
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    queue.schedule(base + (i + 1) * 1000,
                   [&queue](flex::SimTime now) {
                     queue.schedule(now + 1500, [](flex::SimTime) {});
                   });
  }
  queue.run_all();
}

struct KernelNumbers {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double allocations_per_event = 0.0;
  std::size_t slab_slots = 0;
};

KernelNumbers bench_kernel(std::uint64_t arrivals, int rounds) {
  namespace alloc = flex::common::alloc_counter;
  flex::ssd::EventQueue queue;
  // Warmup: grows the slab, both lane arrays and the free stack to their
  // high-water marks. Steady state starts here.
  run_round(queue, arrivals);

  const std::uint64_t allocs_before = alloc::allocation_count();
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) run_round(queue, arrivals);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc::allocation_count() - allocs_before;

  KernelNumbers out;
  out.events = 2 * arrivals * static_cast<std::uint64_t>(rounds);
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  out.allocations_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.events);
  out.slab_slots = queue.slab_slots();
  return out;
}

struct SsdNumbers {
  std::uint64_t requests = 0;
  double requests_per_sec = 0.0;
};

SsdNumbers bench_ssd(const flex::bench::ExperimentHarness& harness,
                     std::uint64_t requests_override) {
  const auto start = std::chrono::steady_clock::now();
  const flex::ssd::SsdResults results =
      harness.run(flex::trace::Workload::kFin2, flex::ssd::Scheme::kFlexLevel,
                  /*pe_cycles=*/6000, requests_override);
  const double elapsed = seconds_since(start);
  SsdNumbers out;
  out.requests = results.all_response.count();
  out.requests_per_sec = static_cast<double>(out.requests) / elapsed;
  return out;
}

void write_json(const std::string& path, const KernelNumbers& kernel,
                const SsdNumbers& ssd) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::fprintf(stderr, "micro_kernel: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\n"
               "\"bench\":\"micro_kernel\",\n"
               "\"git_sha\":\"%s\",\n"
               "\"kernel\":{\"events\":%" PRIu64
               ",\"events_per_sec\":%.1f,"
               "\"allocations_per_event\":%.6f,\"slab_slots\":%zu},\n"
               "\"ssd\":{\"workload\":\"fin-2\","
               "\"scheme\":\"LevelAdjust+AccessEval\",\"requests\":%" PRIu64
               ",\"requests_per_sec\":%.1f}\n"
               "}\n",
               FLEX_GIT_SHA, kernel.events, kernel.events_per_sec,
               kernel.allocations_per_event, kernel.slab_slots, ssd.requests,
               ssd.requests_per_sec);
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  flex::bench::OutputOptions outputs = flex::bench::parse_outputs(&argc, argv);
  flex::bench::parse_jobs(&argc, argv);  // accepted for CLI uniformity
  // Positional overrides: [arrivals-per-round [rounds]].
  std::uint64_t arrivals = 200000;
  int rounds = 5;
  if (argc > 1) arrivals = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) rounds = static_cast<int>(std::strtol(argv[2], nullptr, 10));

  std::printf("micro_kernel: hot-path throughput "
              "(counting allocator %s)\n\n",
              flex::common::alloc_counter::counting_enabled() ? "active"
                                                              : "MISSING");

  const KernelNumbers kernel = bench_kernel(arrivals, rounds);
  std::printf("event kernel : %.2fM events/sec  (%" PRIu64
              " events, %zu slab slots)\n",
              kernel.events_per_sec / 1e6, kernel.events, kernel.slab_slots);
  std::printf("steady state : %.6f allocations/event\n",
              kernel.allocations_per_event);

  const flex::bench::ExperimentHarness harness;
  const SsdNumbers ssd = bench_ssd(harness, /*requests_override=*/20000);
  std::printf("end-to-end   : %.0f requests/sec  (fin-2, "
              "LevelAdjust+AccessEval, %" PRIu64 " requests)\n",
              ssd.requests_per_sec, ssd.requests);

  const std::string out_path =
      outputs.bench_out.empty() ? "BENCH_micro_kernel.json" : outputs.bench_out;
  write_json(out_path, kernel, ssd);

  // The memory contract is part of the bench's pass criterion: a nonzero
  // steady-state allocation rate is a regression even if throughput holds.
  if (kernel.allocations_per_event != 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state allocations/event = %.6f (expected 0)\n",
                 kernel.allocations_per_event);
    return 1;
  }
  return 0;
}
