// Reproduces paper Table 5: extra LDPC soft-sensing levels the baseline MLC
// cell needs across P/E cycles and retention time, for UBER <= 1e-15 with
// the rate-8/9 4 KB LDPC code. Also prints the equivalent correction
// strength each ladder step implies under the paper's Eq. 1.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"
#include "reliability/sensing_solver.h"
#include "reliability/uber.h"

int main() {
  using flex::TablePrinter;

  // Paper Table 5 for comparison, rows P/E 3000..6000,
  // columns {0 day, 1 day, 2 days, 1 week, 1 month}.
  const int paper[4][5] = {{0, 0, 0, 0, 1},
                           {0, 0, 0, 1, 4},
                           {0, 0, 1, 2, 4},
                           {0, 1, 2, 4, 6}};

  flex::Rng rng(0x7AB5);
  const flex::reliability::GrayMapper gray;
  const flex::reliability::BerModel baseline(
      flex::nand::LevelConfig::baseline_mlc(), gray,
      flex::reliability::RetentionModel{},
      {.wordlines = 64, .bitlines = 512, .rounds = 8, .coupling = {}}, rng);
  const flex::reliability::SensingRequirement ladder;

  std::printf("=== Table 5: required extra LDPC soft-sensing levels ===\n");
  std::printf("(cell: baseline MLC; target UBER 1e-15; rate-8/9 LDPC on 4 KB"
              " blocks)\n\n");

  const std::vector<std::pair<std::string, double>> ages = {
      {"0 day", 0.0},
      {"1 day", flex::kDay},
      {"2 days", 2 * flex::kDay},
      {"1 week", flex::kWeek},
      {"1 month", flex::kMonth}};

  TablePrinter table({"P/E", "0 day", "1 day", "2 days", "1 week", "1 month",
                      "paper row"});
  const int pes[] = {3000, 4000, 5000, 6000};
  int matches = 0;
  int cells = 0;
  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> row = {std::to_string(pes[r])};
    std::string paper_row;
    for (int c = 0; c < 5; ++c) {
      const double ber = baseline.total_ber(pes[r], ages[c].second);
      const int levels = ladder.required_levels(ber);
      row.push_back(std::to_string(levels));
      paper_row += std::to_string(paper[r][c]) + (c < 4 ? " " : "");
      if (levels == paper[r][c]) ++matches;
      ++cells;
    }
    row.push_back(paper_row);
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Cells matching the paper exactly: %d / %d\n\n", matches, cells);

  // The BER cap of every ladder step implies a correction strength under
  // Eq. 1 (n = 32768, m = 36864 bits, UBER target 1e-15).
  std::printf("Sensing ladder and implied Eq. 1 correction strength:\n");
  TablePrinter ladder_table(
      {"extra levels", "max raw BER", "implied t (bits)", "uber at cap"});
  for (const auto& step : ladder.steps()) {
    const int t = flex::reliability::required_correction(
        1e-15, 32768, 36864, step.max_raw_ber);
    ladder_table.add_row(
        {std::to_string(step.extra_levels),
         TablePrinter::num(step.max_raw_ber),
         std::to_string(t),
         TablePrinter::num(
             flex::reliability::uber(t, 32768, 36864, step.max_raw_ber), 2)});
  }
  std::printf("%s", ladder_table.to_string().c_str());
  return 0;
}
