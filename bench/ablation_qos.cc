// Multi-tenant QoS scheduling ablation (no paper figure — the DAC'15
// evaluation is single-tenant closed-loop; this bench exercises the
// open-loop workload engine and the QoS chip scheduler added on top).
//
// Three experiments, each run under both dispatch policies (FIFO control
// arm vs. EDF-with-weighted-fair deadline scheduling) on the aged
// P/E-6000 drive:
//  * an arrival-rate sweep from light load to past saturation, 4 Zipf
//    tenants with a high-priority latency-sensitive tenant 0 — the
//    deadline policy's read/write class separation buys back the read
//    tail as queueing builds;
//  * a "GC storm": write-heavy MMPP bursts with fault injection (block
//    retirements eat over-provisioning, so GC runs hot), admission
//    control and write-through back-pressure bounding queue memory;
//  * a "refresh storm": a 98%-read population with accelerated read
//    disturb and a tight refresh threshold, so scrub relocation trains
//    compete with host reads for the chips.
//
// Stdout is fully deterministic (no wall-clock, no machine state) and
// must be byte-identical across --jobs values; host wall-clock per run
// goes to BENCH_qos.json only.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "telemetry/telemetry.h"
#include "workload/engine.h"

namespace {

// Requests/s at which the 8-chip array saturates under this bench's
// 70%-read 4-tenant mix. The naive bound (8 chips / ~0.6 ms of chip
// occupancy per 2-page request) is ~13k, but Zipf(0.9) address skew
// concentrates the hot ranks on a few chips, so the bottleneck chip
// saturates around 4k requests/s — empirically the knee where FIFO's
// read p99 starts growing with the window length.
constexpr double kSaturationIops = 4'000.0;

// 4 tenants x 60k pages — inside the 80% standing population of the
// scaled drive's logical space, so tenant reads hit mapped pages.
constexpr std::uint64_t kFootprintPages = 240'000;

struct Variant {
  std::string label;
  flex::workload::EngineConfig engine;
  flex::ssd::QosConfig qos;
  flex::ssd::ReadDisturbConfig disturb;
  bool faults = false;
};

}  // namespace

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 60'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);
  const std::uint64_t warmup = requests / 3;

  std::printf(
      "=== QoS scheduling ablation (4 tenants, P/E 6000, %llu requests) "
      "===\n\n",
      static_cast<unsigned long long>(requests));
  flex::bench::ExperimentHarness harness;

  // The shared tenant population: Zipf(0.9) arrival shares over equal
  // footprint slices; tenant 0 is the latency-sensitive foreground
  // service (high priority, 4x fair share), the rest are batch.
  auto population = [](double read_fraction) {
    auto tenants =
        flex::workload::zipf_tenant_population(4, 0.9, kFootprintPages);
    for (auto& tenant : tenants) tenant.read_fraction = read_fraction;
    tenants[0].priority = 1;
    tenants[0].qos_weight = 4.0;
    return tenants;
  };
  auto qos_config = [](flex::ssd::QosPolicy policy) {
    flex::ssd::QosConfig qos;
    qos.enabled = true;
    qos.policy = policy;
    qos.tenants = 4;
    qos.tenant_weights = {4.0, 1.0, 1.0, 1.0};
    return qos;
  };

  std::vector<Variant> variants;
  const struct {
    const char* label;
    double load;
  } sweep[] = {{"sweep 30%", 0.3},
               {"sweep 60%", 0.6},
               {"sweep 80%", 0.8},
               {"sweep 100%", 1.0},
               {"sweep 120%", 1.2}};
  const struct {
    const char* name;
    flex::ssd::QosPolicy policy;
  } policies[] = {{"fifo", flex::ssd::QosPolicy::kFifo},
                  {"deadline", flex::ssd::QosPolicy::kDeadline}};
  for (const auto& point : sweep) {
    for (const auto& policy : policies) {
      Variant v;
      v.label = std::string(point.label) + " " + policy.name;
      v.engine.arrivals.base_iops = kSaturationIops * point.load;
      v.engine.tenants = population(/*read_fraction=*/0.7);
      v.engine.seed = 0xAB1A;  // same stream for both policies at a load
      v.qos = qos_config(policy.policy);
      variants.push_back(std::move(v));
    }
  }
  for (const auto& policy : policies) {
    // GC storm: write-heavy bursts (6x for ~15% of the time) on a faulty
    // drive. Admission control and the dirty watermark bound queue
    // memory; GC throttling defers the relocation trains the extra
    // writes provoke. rescue = 1.0 keeps the storm lossless so both
    // policies serve the identical request population.
    Variant v;
    v.label = std::string("gc storm ") + policy.name;
    v.engine.arrivals.base_iops = kSaturationIops * 0.5;
    v.engine.arrivals.burst_rate_multiplier = 6.0;
    v.engine.arrivals.burst_on_fraction = 0.15;
    v.engine.arrivals.burst_mean_on_s = 0.05;
    v.engine.tenants = population(/*read_fraction=*/0.35);
    v.engine.seed = 0x6C57;
    v.qos = qos_config(policy.policy);
    v.qos.admission_max_outstanding = 128;
    v.qos.write_admission_dirty_watermark = 96;
    v.qos.gc_throttle_queue_depth = 6;
    v.faults = true;
    variants.push_back(std::move(v));
  }
  for (const auto& policy : policies) {
    // Refresh storm: read-hot tenants under accelerated disturb with a
    // tight scrub threshold — background relocation pressure without
    // host writes. GC throttling keeps scrubs out of read bursts.
    Variant v;
    v.label = std::string("refresh storm ") + policy.name;
    v.engine.arrivals.base_iops = kSaturationIops * 0.7;
    v.engine.tenants = population(/*read_fraction=*/0.98);
    v.engine.seed = 0x5C2B;
    v.qos = qos_config(policy.policy);
    v.qos.gc_throttle_queue_depth = 6;
    v.disturb.enabled = true;
    v.disturb.model.vth_shift_per_read = 1.8e-4;
    v.disturb.refresh_threshold = 400;
    variants.push_back(std::move(v));
  }

  const bool collect =
      !outputs.trace_out.empty() || !outputs.metrics_out.empty();
  const auto all = flex::bench::run_indexed(
      variants.size(),
      [&](std::size_t i) {
        const Variant& v = variants[i];
        flex::ssd::SsdConfig cfg = flex::bench::ExperimentHarness::
            drive_config(flex::ssd::Scheme::kLdpcInSsd, 6000);
        cfg.qos = v.qos;
        cfg.read_disturb = v.disturb;
        if (v.faults) {
          cfg.faults.enabled = true;
          cfg.faults.program_fail_rate = 2e-4;
          cfg.faults.erase_fail_rate = 2e-4;
          cfg.faults.grown_defect_rate = 1e-4;
          cfg.faults.read_retry_rescue = 1.0;
        }
        if (!collect) {
          return harness.run_open_loop(cfg, v.engine, warmup, requests);
        }
        flex::telemetry::Telemetry telemetry;
        telemetry.pid = static_cast<std::int32_t>(i + 1);
        telemetry.trace = !outputs.trace_out.empty();
        return harness.run_open_loop(cfg, v.engine, warmup, requests,
                                     &telemetry);
      },
      jobs);

  TablePrinter table({"variant", "read mean ms", "read p99 ms",
                      "read p999 ms", "t0 p99 ms", "rejected",
                      "bg deferrals", "fair overrides"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = all[i];
    table.add_row(
        {variants[i].label,
         TablePrinter::num(r.read_response.mean() * 1e3, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) * 1e3, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.999) * 1e3, 3),
         TablePrinter::num(
             r.tenant[0].read_latency_hist.quantile(0.99) * 1e3, 3),
         std::to_string(r.admission_rejected),
         std::to_string(r.background_deferrals),
         std::to_string(r.fairness_overrides)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Sweep rows at one load level serve the identical arrival stream "
      "and walk the identical FTL state trajectory — they isolate pure "
      "dispatch-order effects. Under load the deadline policy's class "
      "budgets pull reads ahead of writes and maintenance, buying back "
      "the read tail; the weighted-fair override and the priority "
      "deadline shrink tenant 0's p99 further. (Storm rows are not "
      "state-identical across policies: admission rejections and "
      "disturb-triggered scrubs depend on queue state, which is the "
      "policy's to shape.)\n");

  std::vector<flex::bench::RunLabel> runs;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    runs.push_back(
        {"qos/" + variants[i].label, static_cast<std::int32_t>(i + 1)});
  }
  if (collect) {
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, all);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, all);
    }
  }
  flex::bench::write_bench_json(
      outputs.bench_out.empty() ? "BENCH_qos.json" : outputs.bench_out,
      "qos", requests, jobs, runs, all);
  return 0;
}
