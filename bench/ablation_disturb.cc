// Read-disturb / refresh-threshold ablation (no paper figure — the DAC'15
// evaluation pre-dates disturb-aware provisioning; the model follows Cai
// et al., DSN'15, see PAPERS.md and reliability/read_disturb.h).
//
// Web-1 is the stress case: 99% reads with Zipf(0.9) skew concentrate a
// quarter of all reads on a few dozen pages, so their blocks accumulate
// pass-voltage stress far faster than the drive average. With disturb
// enabled and no refresh, those read-hot blocks climb the sensing ladder
// (and eventually go uncorrectable); a refresh scrub relocates their valid
// pages and erases the block, resetting the disturb term at the cost of
// extra NAND writes/erases. The sweep shows the latency/endurance
// trade-off as the refresh threshold tightens.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "telemetry/telemetry.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 100'000;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== Read-disturb refresh ablation (web-1, P/E 6000, %llu requests) "
      "===\n\n",
      static_cast<unsigned long long>(requests));
  flex::bench::ExperimentHarness harness;

  // Accelerated stress (see ReadDisturbModel::Params): web-1's hottest
  // blocks reach a few hundred to ~2k reads at bench scale, so the
  // per-read shift is set to put the erased-state ladder crossing near
  // ~300 block reads and near-uncorrectable BER around ~700.
  flex::reliability::ReadDisturbModel::Params stress;
  stress.vth_shift_per_read = 1.8e-4;

  struct Variant {
    std::string label;
    bool disturb = false;
    std::uint64_t threshold = 0;  ///< 0 = no refresh
  };
  std::vector<Variant> variants = {
      {.label = "no disturb (reference)"},
      {.label = "disturb, no refresh", .disturb = true},
      {.label = "refresh @ 1600", .disturb = true, .threshold = 1600},
      {.label = "refresh @ 800", .disturb = true, .threshold = 800},
      {.label = "refresh @ 400", .disturb = true, .threshold = 400},
      {.label = "refresh @ 200", .disturb = true, .threshold = 200},
  };

  const bool collect =
      !outputs.trace_out.empty() || !outputs.metrics_out.empty();
  const auto all = flex::bench::run_indexed(
      variants.size(),
      [&](std::size_t i) {
        flex::ssd::SsdConfig cfg = flex::bench::ExperimentHarness::
            drive_config(flex::ssd::Scheme::kLdpcInSsd, 6000);
        cfg.read_disturb.enabled = variants[i].disturb;
        cfg.read_disturb.model = stress;
        cfg.read_disturb.refresh_threshold = variants[i].threshold;
        if (!collect) {
          return harness.run_with(cfg, flex::trace::Workload::kWeb1,
                                  requests);
        }
        flex::telemetry::Telemetry telemetry;
        telemetry.pid = static_cast<std::int32_t>(i + 1);
        telemetry.trace = !outputs.trace_out.empty();
        return harness.run_with(cfg, flex::trace::Workload::kWeb1, requests,
                                &telemetry);
      },
      jobs);
  const auto& reference = all.front();

  TablePrinter table({"variant", "norm mean read", "norm p99 read",
                      "uncorrectable", "refreshes", "pages moved",
                      "NAND erases"});
  const double ref_mean = reference.read_response.mean();
  const double ref_p99 = reference.read_latency_hist.quantile(0.99);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = all[i];
    table.add_row(
        {variants[i].label,
         TablePrinter::num(r.read_response.mean() / ref_mean, 3),
         TablePrinter::num(r.read_latency_hist.quantile(0.99) / ref_p99, 3),
         std::to_string(r.uncorrectable_reads),
         std::to_string(r.refresh_blocks),
         std::to_string(r.refresh_page_moves),
         std::to_string(r.ftl.nand_erases)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Unchecked disturb drags the read-hot tail up the sensing ladder; a "
      "tighter refresh threshold buys the tail back with background "
      "relocation work (pages moved / erases). The scrub itself is "
      "deferrable maintenance and never appears in host-visible latency. "
      "Aggressive thresholds can even beat the no-disturb reference: the "
      "relocation reprograms hot pages, so under the physical age model "
      "their retention clock restarts too.\n");

  if (collect) {
    std::vector<flex::bench::RunLabel> runs;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      runs.push_back(
          {"web-1/" + variants[i].label, static_cast<std::int32_t>(i + 1)});
    }
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, all);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, all);
    }
  }
  return 0;
}
