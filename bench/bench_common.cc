#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"

#ifndef FLEX_GIT_SHA
#define FLEX_GIT_SHA "unknown"
#endif

namespace flex::bench {
namespace {

const reliability::GrayMapper kGray;
const flexlevel::ReduceCodeMapper kReduce;

reliability::BerEngine::Config c2c_mc() {
  // Large enough to resolve the (rare) reduced-state C2C errors.
  return {.wordlines = 64, .bitlines = 512, .rounds = 4, .coupling = {}};
}

}  // namespace

ExperimentHarness::ExperimentHarness() {
  Rng rng(0xF1E7);
  normal_ = std::make_unique<reliability::BerModel>(
      nand::LevelConfig::baseline_mlc(), kGray, reliability::RetentionModel{},
      c2c_mc(), rng);
  reduced_ = std::make_unique<reliability::BerModel>(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), kReduce,
      reliability::RetentionModel{}, c2c_mc(), rng);
}

ssd::SsdConfig ExperimentHarness::drive_config(ssd::Scheme scheme,
                                               int pe_cycles) {
  ssd::SsdConfig cfg;
  cfg.scheme = scheme;
  // Scaled drive: 8 chips x 896 blocks x 1 MB = 7 GB raw; Table 6 page and
  // block geometry and timing preserved.
  cfg.ftl.spec.page_size_bytes = 16 * 1024;
  cfg.ftl.spec.pages_per_block = 64;
  cfg.ftl.spec.blocks_per_chip = 896;
  cfg.ftl.spec.chips = 8;
  cfg.ftl.over_provisioning = 0.27;
  cfg.ftl.gc_low_watermark = 8;
  cfg.ftl.initial_pe_cycles = static_cast<std::uint32_t>(pe_cycles);
  // Standing data aged along the paper's retention axis (Table 4/5 probe
  // the 1-day..1-month band): at P/E 6000 essentially every stale page
  // needs soft sensing, which is the regime Fig. 6 evaluates.
  cfg.min_prefill_age = kDay;
  cfg.max_prefill_age = kMonth;
  // Write buffer scaled with the drive (paper-equivalent ~0.025% of raw).
  cfg.write_buffer_pages = 128;
  cfg.write_buffer_flush_batch = 32;
  // One full overwrite pass of preconditioning: GC starts in steady state.
  cfg.precondition_passes = 1.0;
  // ReducedCell pool: the paper's 64 GB of a 256 GB drive = 25% of raw
  // capacity, expressed in logical pages of the scaled drive.
  const double raw_pages =
      static_cast<double>(cfg.ftl.spec.total_pages());
  cfg.access_eval.pool_capacity_pages =
      static_cast<std::uint64_t>(raw_pages * 0.25);
  cfg.access_eval.freq_levels = 2;       // L_f = 2 (paper §6.2)
  cfg.access_eval.sensing_buckets = 2;   // L_sensing = 2
  cfg.access_eval.overhead_threshold = 2;
  cfg.access_eval.hotness = {.filter_count = 4,
                             .bits_per_filter = 1 << 18,
                             .hashes = 2,
                             .window_accesses = 65'536};
  return cfg;
}

ssd::SsdResults ExperimentHarness::run(trace::Workload workload,
                                       ssd::Scheme scheme, int pe_cycles,
                                       std::uint64_t requests_override,
                                       ssd::AgeModel age_model,
                                       std::uint64_t pool_override_pages)
    const {
  ssd::SsdConfig cfg = drive_config(scheme, pe_cycles);
  cfg.age_model = age_model;
  if (pool_override_pages > 0) {
    cfg.access_eval.pool_capacity_pages = pool_override_pages;
  }
  return run_with(cfg, workload, requests_override);
}

ssd::SsdResults ExperimentHarness::run(const CellSpec& cell) const {
  ssd::SsdConfig cfg = drive_config(cell.scheme, cell.pe_cycles);
  cfg.age_model = cell.age_model;
  if (cell.pool_override_pages > 0) {
    cfg.access_eval.pool_capacity_pages = cell.pool_override_pages;
  }
  if (!cell.collect_metrics && !cell.collect_spans) {
    return run_with(std::move(cfg), cell.workload, cell.requests_override);
  }
  telemetry::Telemetry telemetry;
  telemetry.pid = cell.telemetry_pid;
  telemetry.trace = cell.collect_spans;
  return run_with(std::move(cfg), cell.workload, cell.requests_override,
                  &telemetry);
}

namespace {

/// Wall-clock stamp shared by the closed- and open-loop harness paths.
class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

ssd::SsdResults ExperimentHarness::run_with(
    ssd::SsdConfig cfg, trace::Workload workload,
    std::uint64_t requests_override, telemetry::Telemetry* telemetry) const {
  const WallTimer timer;
  trace::WorkloadParams params = trace::workload_params(workload);
  if (requests_override > 0) params.requests = requests_override;
  // The drive is scaled to 1/8 of the paper's chip count; scale the arrival
  // rate with it so array utilisation (and hence queueing) matches what the
  // full-size drive would see.
  params.iops *= 0.45;
  const auto requests = trace::generate(params, /*seed=*/2015);

  // Builder path: a bad configuration surfaces its Status message and a
  // clean nonzero exit — every bench front-end funnels through here.
  auto built = ssd::SsdSimulator::Builder(*normal_, *reduced_)
                   .config(std::move(cfg))
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "bench configuration rejected: %s\n",
                 built.status().to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  ssd::SsdSimulator& sim = **built;
  // The drive carries a realistic standing population (80% of the logical
  // space mapped): high enough that reduced-state storage genuinely eats
  // into over-provisioning headroom, low enough that the resulting GC
  // remains serviceable by the chip array.
  sim.prefill(sim.ftl().logical_pages() * 4 / 5);
  // Warm up on the first third of the trace (hotness filters, pool,
  // buffer), then measure steady state on the remainder.
  const auto split = requests.begin() +
                     static_cast<std::ptrdiff_t>(requests.size() / 3);
  sim.run_segment({requests.begin(), split});
  sim.reset_measurements();
  // Telemetry attaches after warmup (deliberately not via the Builder) so
  // metrics and spans cover exactly the measured window. Observation-only:
  // results are bit-identical with or without it.
  if (telemetry) sim.attach_telemetry(telemetry);
  sim.run_segment({split, requests.end()});
  // The one copy of the run: run_segment + results() replaces the old
  // copy-per-run() (which also copied and discarded the warmup results).
  ssd::SsdResults results = sim.results();
  results.wall_seconds = timer.seconds();
  return results;
}

ssd::SsdResults ExperimentHarness::run_open_loop(
    ssd::SsdConfig cfg, const workload::EngineConfig& engine,
    std::uint64_t warmup_requests, std::uint64_t measure_requests,
    telemetry::Telemetry* telemetry) const {
  const WallTimer timer;
  auto built = ssd::SsdSimulator::Builder(*normal_, *reduced_)
                   .config(std::move(cfg))
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "bench configuration rejected: %s\n",
                 built.status().to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  if (const Status status = engine.Validate(); !status.ok()) {
    std::fprintf(stderr, "bench workload rejected: %s\n",
                 status.to_string().c_str());
    std::exit(EXIT_FAILURE);
  }
  workload::WorkloadEngine source(engine);
  ssd::SsdSimulator& sim = **built;
  sim.prefill(sim.ftl().logical_pages() * 4 / 5);
  // One continuous arrival stream: the warmup window primes hotness
  // filters, pool and write buffer, and the engine's arrival clock carries
  // straight into the measured window. Any warmup backlog drains before
  // measurement (as in the closed-loop harness) so measured latencies
  // start from a defined point instead of inheriting warmup queue debt.
  if (warmup_requests > 0) sim.run_open_loop(source, warmup_requests);
  sim.reset_measurements();
  if (telemetry) sim.attach_telemetry(telemetry);
  sim.run_open_loop(source, measure_requests);
  ssd::SsdResults results = sim.results();
  results.wall_seconds = timer.seconds();
  return results;
}

std::vector<ssd::SsdResults> run_indexed(
    std::size_t count,
    const std::function<ssd::SsdResults(std::size_t)>& runner, int jobs) {
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  std::vector<ssd::SsdResults> results(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = runner(i);
    return results;
  }
  // Work stealing over a shared index: cells are independent (each owns
  // its simulator; the shared BerModels are const), so any assignment of
  // cells to threads yields the same per-index results.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      results[i] = runner(i);
    }
  };
  std::vector<std::thread> pool;
  const auto threads =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  return results;
}

std::vector<ssd::SsdResults> run_cells(const ExperimentHarness& harness,
                                       const std::vector<CellSpec>& cells,
                                       int jobs) {
  return run_indexed(
      cells.size(),
      [&](std::size_t i) { return harness.run(cells[i]); }, jobs);
}

OutputOptions parse_outputs(int* argc, char** argv) {
  OutputOptions options;
  const struct {
    const char* flag;
    std::string* dest;
  } flags[] = {{"--trace-out", &options.trace_out},
               {"--metrics-out", &options.metrics_out},
               {"--bench-out", &options.bench_out}};
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    bool consumed = false;
    for (const auto& [flag, dest] : flags) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
        *dest = argv[++i];
        consumed = true;
        break;
      }
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        *dest = argv[i] + len + 1;
        consumed = true;
        break;
      }
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
  return options;
}

std::string cell_label(const CellSpec& cell) {
  return trace::workload_name(cell.workload) + "/" +
         ssd::scheme_name(cell.scheme) + "/pe" +
         std::to_string(cell.pe_cycles);
}

void write_trace_file(const std::string& path,
                      const std::vector<RunLabel>& runs,
                      const std::vector<ssd::SsdResults>& results) {
  std::vector<telemetry::Span> spans;
  std::vector<telemetry::TrackLabel> labels;
  std::set<std::pair<std::int32_t, std::int32_t>> tracks;
  for (std::size_t i = 0; i < runs.size() && i < results.size(); ++i) {
    if (results[i].spans.empty()) continue;
    labels.push_back(
        {.pid = runs[i].pid, .thread = false, .name = runs[i].label});
    for (const telemetry::Span& span : results[i].spans) {
      spans.push_back(span);
      tracks.emplace(span.pid, span.tid);
    }
  }
  for (const auto& [pid, tid] : tracks) {
    telemetry::TrackLabel label{.pid = pid, .tid = tid, .thread = true};
    if (tid == telemetry::kHostTrack) {
      label.name = "host";
    } else if (tid == telemetry::kFtlTrack) {
      label.name = "ftl";
    } else {
      label.name = "chip " + std::to_string(tid);
    }
    labels.push_back(std::move(label));
  }
  std::ofstream out(path);
  telemetry::write_chrome_trace(out, spans, labels);
}

void write_trace_file(const std::string& path,
                      const std::vector<CellSpec>& cells,
                      const std::vector<ssd::SsdResults>& results) {
  std::vector<RunLabel> runs;
  runs.reserve(cells.size());
  for (const CellSpec& cell : cells) {
    runs.push_back({cell_label(cell), cell.telemetry_pid});
  }
  write_trace_file(path, runs, results);
}

void write_metrics_file(const std::string& path,
                        const std::vector<RunLabel>& runs,
                        const std::vector<ssd::SsdResults>& results) {
  std::ofstream out(path);
  telemetry::MetricsSnapshot merged;
  for (std::size_t i = 0; i < runs.size() && i < results.size(); ++i) {
    if (results[i].metrics.empty()) continue;
    telemetry::write_metrics_jsonl(out, runs[i].label, results[i].metrics);
    // Index-order fold: deterministic whatever --jobs produced them.
    merged.merge(results[i].metrics);
  }
  if (!merged.empty()) {
    telemetry::write_metrics_jsonl(out, "_merged", merged);
  }
}

void write_metrics_file(const std::string& path,
                        const std::vector<CellSpec>& cells,
                        const std::vector<ssd::SsdResults>& results) {
  std::vector<RunLabel> runs;
  runs.reserve(cells.size());
  for (const CellSpec& cell : cells) {
    runs.push_back({cell_label(cell), cell.telemetry_pid});
  }
  write_metrics_file(path, runs, results);
}

namespace {

/// Shared preamble of both BENCH_*.json shapes: bench identity, git SHA
/// and the drive geometry. `rows` names the row array that follows
/// ("cells" or "runs").
void write_bench_preamble(std::ofstream& out, const std::string& bench,
                          std::uint64_t requests_override, int jobs,
                          const char* rows) {
  using telemetry::format_double;
  using telemetry::json_escape;
  const ssd::SsdConfig cfg =
      ExperimentHarness::drive_config(ssd::Scheme::kLdpcInSsd, 6000);
  out << "{\n\"bench\":\"" << json_escape(bench) << "\",\n"
      << "\"git_sha\":\"" << json_escape(FLEX_GIT_SHA) << "\",\n"
      << "\"config\":{"
      << "\"chips\":" << cfg.ftl.spec.chips
      << ",\"blocks_per_chip\":" << cfg.ftl.spec.blocks_per_chip
      << ",\"pages_per_block\":" << cfg.ftl.spec.pages_per_block
      << ",\"page_size_bytes\":" << cfg.ftl.spec.page_size_bytes
      << ",\"over_provisioning\":"
      << format_double(cfg.ftl.over_provisioning)
      << ",\"requests_override\":" << requests_override
      << ",\"jobs\":" << jobs << "},\n\"" << rows << "\":[";
}

}  // namespace

void write_bench_json(const std::string& path, const std::string& bench,
                      std::uint64_t requests_override, int jobs,
                      const std::vector<CellSpec>& cells,
                      const std::vector<ssd::SsdResults>& results) {
  using telemetry::format_double;
  using telemetry::json_escape;
  std::ofstream out(path);
  write_bench_preamble(out, bench, requests_override, jobs, "cells");
  for (std::size_t i = 0; i < cells.size() && i < results.size(); ++i) {
    const CellSpec& cell = cells[i];
    const ssd::SsdResults& r = results[i];
    const ssd::ReadBreakdown& b = r.read_breakdown;
    const double total = static_cast<double>(b.total());
    out << (i == 0 ? "\n" : ",\n") << "{\"workload\":\""
        << json_escape(trace::workload_name(cell.workload))
        << "\",\"scheme\":\"" << json_escape(ssd::scheme_name(cell.scheme))
        << "\",\"pe_cycles\":" << cell.pe_cycles << ",\"age_model\":\""
        << (cell.age_model == ssd::AgeModel::kStaticPerLba ? "static"
                                                           : "physical")
        << "\",\"requests\":" << r.all_response.count()
        << ",\"reads\":" << r.read_response.count()
        << ",\"writes\":" << r.write_response.count()
        << ",\"all_mean_s\":" << format_double(r.all_response.mean())
        << ",\"read_mean_s\":" << format_double(r.read_response.mean())
        << ",\"read_p99_s\":"
        << format_double(r.read_latency_hist.quantile(0.99))
        << ",\"read_total_s\":" << format_double(r.read_response.sum())
        << ",\"wall_clock_s\":" << format_double(r.wall_seconds)
        << ",\"breakdown_s\":{";
    const std::pair<const char*, Duration> parts[] = {
        {"queue_wait", b.queue_wait},
        {"sensing", b.sensing},
        {"transfer", b.transfer},
        {"decode", b.decode},
        {"buffer", b.buffer}};
    for (std::size_t p = 0; p < std::size(parts); ++p) {
      out << (p == 0 ? "" : ",") << '"' << parts[p].first
          << "\":" << format_double(to_seconds(parts[p].second));
    }
    out << "},\"breakdown_share\":{";
    for (std::size_t p = 0; p < std::size(parts); ++p) {
      const double share =
          total > 0.0 ? static_cast<double>(parts[p].second) / total : 0.0;
      out << (p == 0 ? "" : ",") << '"' << parts[p].first
          << "\":" << format_double(share);
    }
    out << "}}";
  }
  out << "\n]}\n";
}

void write_bench_json(const std::string& path, const std::string& bench,
                      std::uint64_t requests_override, int jobs,
                      const std::vector<RunLabel>& runs,
                      const std::vector<ssd::SsdResults>& results) {
  using telemetry::format_double;
  using telemetry::json_escape;
  std::ofstream out(path);
  write_bench_preamble(out, bench, requests_override, jobs, "runs");
  for (std::size_t i = 0; i < runs.size() && i < results.size(); ++i) {
    const ssd::SsdResults& r = results[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"label\":\""
        << json_escape(runs[i].label) << '"'
        << ",\"requests\":" << r.all_response.count()
        << ",\"reads\":" << r.read_response.count()
        << ",\"writes\":" << r.write_response.count()
        << ",\"read_mean_s\":" << format_double(r.read_response.mean())
        << ",\"read_p99_s\":"
        << format_double(r.read_latency_hist.quantile(0.99))
        << ",\"read_p999_s\":"
        << format_double(r.read_latency_hist.quantile(0.999))
        << ",\"write_mean_s\":" << format_double(r.write_response.mean())
        << ",\"admission_rejected\":" << r.admission_rejected
        << ",\"request_slots_high_water\":" << r.qos_request_slots_high_water
        << ",\"pending_high_water\":" << r.qos_pending_high_water
        << ",\"background_deferrals\":" << r.background_deferrals
        << ",\"fairness_overrides\":" << r.fairness_overrides
        << ",\"wall_clock_s\":" << format_double(r.wall_seconds)
        << ",\"tenants\":[";
    for (std::size_t t = 0; t < r.tenant.size(); ++t) {
      const ssd::TenantStats& ts = r.tenant[t];
      out << (t == 0 ? "" : ",")
          << "{\"reads\":" << ts.read_response.count()
          << ",\"writes\":" << ts.write_response.count()
          << ",\"read_mean_s\":" << format_double(ts.read_response.mean())
          << ",\"read_p99_s\":"
          << format_double(ts.read_latency_hist.quantile(0.99))
          << ",\"read_p999_s\":"
          << format_double(ts.read_latency_hist.quantile(0.999))
          << ",\"write_mean_s\":" << format_double(ts.write_response.mean())
          << ",\"rejected\":" << ts.admission_rejected << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
}

int parse_jobs(int* argc, char** argv) {
  int jobs = 1;
  if (const char* env = std::getenv("FLEX_BENCH_JOBS")) {
    jobs = std::atoi(env);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const bool is_flag = std::strcmp(argv[i], "--jobs") == 0 ||
                         std::strcmp(argv[i], "-j") == 0;
    if (is_flag && i + 1 < *argc) {
      jobs = std::atoi(argv[++i]);
      continue;
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return jobs < 0 ? 1 : jobs;
}

}  // namespace flex::bench
