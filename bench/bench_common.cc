#include "bench_common.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"

namespace flex::bench {
namespace {

const reliability::GrayMapper kGray;
const flexlevel::ReduceCodeMapper kReduce;

reliability::BerEngine::Config c2c_mc() {
  // Large enough to resolve the (rare) reduced-state C2C errors.
  return {.wordlines = 64, .bitlines = 512, .rounds = 4, .coupling = {}};
}

}  // namespace

ExperimentHarness::ExperimentHarness() {
  Rng rng(0xF1E7);
  normal_ = std::make_unique<reliability::BerModel>(
      nand::LevelConfig::baseline_mlc(), kGray, reliability::RetentionModel{},
      c2c_mc(), rng);
  reduced_ = std::make_unique<reliability::BerModel>(
      flexlevel::nunma_config(flexlevel::NunmaScheme::kNunma3), kReduce,
      reliability::RetentionModel{}, c2c_mc(), rng);
}

ssd::SsdConfig ExperimentHarness::drive_config(ssd::Scheme scheme,
                                               int pe_cycles) {
  ssd::SsdConfig cfg;
  cfg.scheme = scheme;
  // Scaled drive: 8 chips x 896 blocks x 1 MB = 7 GB raw; Table 6 page and
  // block geometry and timing preserved.
  cfg.ftl.spec.page_size_bytes = 16 * 1024;
  cfg.ftl.spec.pages_per_block = 64;
  cfg.ftl.spec.blocks_per_chip = 896;
  cfg.ftl.spec.chips = 8;
  cfg.ftl.over_provisioning = 0.27;
  cfg.ftl.gc_low_watermark = 8;
  cfg.ftl.initial_pe_cycles = static_cast<std::uint32_t>(pe_cycles);
  // Standing data aged along the paper's retention axis (Table 4/5 probe
  // the 1-day..1-month band): at P/E 6000 essentially every stale page
  // needs soft sensing, which is the regime Fig. 6 evaluates.
  cfg.min_prefill_age = kDay;
  cfg.max_prefill_age = kMonth;
  // Write buffer scaled with the drive (paper-equivalent ~0.025% of raw).
  cfg.write_buffer_pages = 128;
  cfg.write_buffer_flush_batch = 32;
  // One full overwrite pass of preconditioning: GC starts in steady state.
  cfg.precondition_passes = 1.0;
  // ReducedCell pool: the paper's 64 GB of a 256 GB drive = 25% of raw
  // capacity, expressed in logical pages of the scaled drive.
  const double raw_pages =
      static_cast<double>(cfg.ftl.spec.total_pages());
  cfg.access_eval.pool_capacity_pages =
      static_cast<std::uint64_t>(raw_pages * 0.25);
  cfg.access_eval.freq_levels = 2;       // L_f = 2 (paper §6.2)
  cfg.access_eval.sensing_buckets = 2;   // L_sensing = 2
  cfg.access_eval.overhead_threshold = 2;
  cfg.access_eval.hotness = {.filter_count = 4,
                             .bits_per_filter = 1 << 18,
                             .hashes = 2,
                             .window_accesses = 65'536};
  return cfg;
}

ssd::SsdResults ExperimentHarness::run(trace::Workload workload,
                                       ssd::Scheme scheme, int pe_cycles,
                                       std::uint64_t requests_override,
                                       ssd::AgeModel age_model,
                                       std::uint64_t pool_override_pages)
    const {
  ssd::SsdConfig cfg = drive_config(scheme, pe_cycles);
  cfg.age_model = age_model;
  if (pool_override_pages > 0) {
    cfg.access_eval.pool_capacity_pages = pool_override_pages;
  }
  return run_with(cfg, workload, requests_override);
}

ssd::SsdResults ExperimentHarness::run(const CellSpec& cell) const {
  return run(cell.workload, cell.scheme, cell.pe_cycles,
             cell.requests_override, cell.age_model,
             cell.pool_override_pages);
}

ssd::SsdResults ExperimentHarness::run_with(
    ssd::SsdConfig cfg, trace::Workload workload,
    std::uint64_t requests_override) const {
  trace::WorkloadParams params = trace::workload_params(workload);
  if (requests_override > 0) params.requests = requests_override;
  // The drive is scaled to 1/8 of the paper's chip count; scale the arrival
  // rate with it so array utilisation (and hence queueing) matches what the
  // full-size drive would see.
  params.iops *= 0.45;
  const auto requests = trace::generate(params, /*seed=*/2015);

  ssd::SsdSimulator sim(std::move(cfg), *normal_, *reduced_);
  // The drive carries a realistic standing population (80% of the logical
  // space mapped): high enough that reduced-state storage genuinely eats
  // into over-provisioning headroom, low enough that the resulting GC
  // remains serviceable by the chip array.
  sim.prefill(sim.ftl().logical_pages() * 4 / 5);
  // Warm up on the first third of the trace (hotness filters, pool,
  // buffer), then measure steady state on the remainder.
  const auto split = requests.begin() +
                     static_cast<std::ptrdiff_t>(requests.size() / 3);
  sim.run({requests.begin(), split});
  sim.reset_measurements();
  return sim.run({split, requests.end()});
}

std::vector<ssd::SsdResults> run_indexed(
    std::size_t count,
    const std::function<ssd::SsdResults(std::size_t)>& runner, int jobs) {
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  std::vector<ssd::SsdResults> results(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = runner(i);
    return results;
  }
  // Work stealing over a shared index: cells are independent (each owns
  // its simulator; the shared BerModels are const), so any assignment of
  // cells to threads yields the same per-index results.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      results[i] = runner(i);
    }
  };
  std::vector<std::thread> pool;
  const auto threads =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count);
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  return results;
}

std::vector<ssd::SsdResults> run_cells(const ExperimentHarness& harness,
                                       const std::vector<CellSpec>& cells,
                                       int jobs) {
  return run_indexed(
      cells.size(),
      [&](std::size_t i) { return harness.run(cells[i]); }, jobs);
}

int parse_jobs(int* argc, char** argv) {
  int jobs = 1;
  if (const char* env = std::getenv("FLEX_BENCH_JOBS")) {
    jobs = std::atoi(env);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const bool is_flag = std::strcmp(argv[i], "--jobs") == 0 ||
                         std::strcmp(argv[i], "-j") == 0;
    if (is_flag && i + 1 < *argc) {
      jobs = std::atoi(argv[++i]);
      continue;
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return jobs < 0 ? 1 : jobs;
}

}  // namespace flex::bench
