// Microbenchmarks of the ReduceCode encode/decode path (paper §4.3 claims
// the circuit adds one clock cycle; in software the mapping must be
// table-lookup cheap) and of the two-step program state machine.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "flexlevel/reduce_code.h"
#include "flexlevel/reduced_program.h"

namespace {

using namespace flex;

void BM_ReduceEncode(benchmark::State& state) {
  int value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flexlevel::reduce_encode(value));
    value = (value + 1) & 7;
  }
}
BENCHMARK(BM_ReduceEncode);

void BM_ReduceDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<flexlevel::CellPairLevels> inputs(256);
  for (auto& in : inputs) {
    in = {.first = static_cast<int>(rng.below(3)),
          .second = static_cast<int>(rng.below(3))};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flexlevel::reduce_decode(inputs[i]));
    i = (i + 1) & 255;
  }
}
BENCHMARK(BM_ReduceDecode);

void BM_TwoStepProgram(benchmark::State& state) {
  int value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flexlevel::program_value(value));
    value = (value + 1) & 7;
  }
}
BENCHMARK(BM_TwoStepProgram);

// Page-scale throughput: encode 16 KB of data into cell-level pairs
// (43'691 pairs), the software analogue of the paper's per-page path.
void BM_ReduceEncodePage(benchmark::State& state) {
  Rng rng(2);
  std::vector<int> values(16 * 1024 * 8 / 3 + 1);
  for (auto& v : values) v = static_cast<int>(rng.below(8));
  for (auto _ : state) {
    for (const int v : values) {
      benchmark::DoNotOptimize(flexlevel::reduce_encode(v));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          1024);
}
BENCHMARK(BM_ReduceEncodePage)->Unit(benchmark::kMicrosecond);

}  // namespace
