// Ablation of §5's capacity knob: the ReducedCell pool size. The paper
// fixes it at 64 GB of a 256 GB drive (25% of capacity, bounding the
// worst-case capacity loss at 25% x 25% ~ 6%); this sweep shows the
// response-time / write-overhead / capacity trade-off as the pool shrinks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  const flex::bench::OutputOptions outputs =
      flex::bench::parse_outputs(&argc, argv);
  const int jobs = flex::bench::parse_jobs(&argc, argv);
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== ReducedCell pool size ablation (web-1, P/E 6000) ===\n\n");
  flex::bench::ExperimentHarness harness;

  const double raw_pages = static_cast<double>(
      flex::bench::ExperimentHarness::drive_config(
          flex::ssd::Scheme::kFlexLevel, 6000)
          .ftl.spec.total_pages());

  // Cell 0 is the reference (LDPC-in-SSD: no pool at all); the rest sweep
  // the pool share.
  const std::vector<double> shares = {0.005, 0.02, 0.08, 0.25};
  std::vector<flex::bench::CellSpec> cells;
  cells.push_back({.workload = flex::trace::Workload::kWeb1,
                   .scheme = flex::ssd::Scheme::kLdpcInSsd,
                   .pe_cycles = 6000,
                   .requests_override = requests,
                   .collect_metrics = !outputs.metrics_out.empty(),
                   .collect_spans = !outputs.trace_out.empty(),
                   .telemetry_pid = 1});
  for (const double share : shares) {
    cells.push_back({.workload = flex::trace::Workload::kWeb1,
                     .scheme = flex::ssd::Scheme::kFlexLevel,
                     .pe_cycles = 6000,
                     .requests_override = requests,
                     .pool_override_pages =
                         static_cast<std::uint64_t>(raw_pages * share),
                     .collect_metrics = !outputs.metrics_out.empty(),
                     .collect_spans = !outputs.trace_out.empty(),
                     .telemetry_pid =
                         static_cast<std::int32_t>(cells.size() + 1)});
  }
  const auto all = flex::bench::run_cells(harness, cells, jobs);
  const auto& reference = all.front();

  TablePrinter table({"pool (% of capacity)", "norm response", "pool used",
                      "migrations", "capacity loss (worst case)"});
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double share = shares[i];
    const auto& results = all[i + 1];
    // Worst-case capacity loss: pool share x the 25% density loss of
    // reduced pages.
    table.add_row(
        {TablePrinter::num(share * 100.0, 2),
         TablePrinter::num(results.all_response.mean() /
                               reference.all_response.mean(),
                           3),
         std::to_string(results.pool_pages) + "/" +
             std::to_string(cells[i + 1].pool_override_pages),
         std::to_string(results.migrations_to_reduced),
         TablePrinter::percent(share * 0.25)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The paper's 25%% pool bounds capacity loss at ~6%% while "
              "capturing the hot soft-read set; small pools thrash or leave "
              "hot data un-migrated, trading speed for capacity.\n");

  if (!outputs.trace_out.empty() || !outputs.metrics_out.empty()) {
    // Scheme/workload alone doesn't distinguish the pool sizes, so label
    // runs by pool share instead of cell_label.
    std::vector<flex::bench::RunLabel> runs = {{"web-1/ldpc-in-ssd", 1}};
    for (std::size_t i = 0; i < shares.size(); ++i) {
      runs.push_back({"web-1/flexlevel/pool" +
                          TablePrinter::num(shares[i] * 100.0, 2) + "%",
                      static_cast<std::int32_t>(i + 2)});
    }
    if (!outputs.trace_out.empty()) {
      flex::bench::write_trace_file(outputs.trace_out, runs, all);
    }
    if (!outputs.metrics_out.empty()) {
      flex::bench::write_metrics_file(outputs.metrics_out, runs, all);
    }
  }
  return 0;
}
