// Ablation of §5's capacity knob: the ReducedCell pool size. The paper
// fixes it at 64 GB of a 256 GB drive (25% of capacity, bounding the
// worst-case capacity loss at 25% x 25% ~ 6%); this sweep shows the
// response-time / write-overhead / capacity trade-off as the pool shrinks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using flex::TablePrinter;
  std::uint64_t requests = 0;
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== ReducedCell pool size ablation (web-1, P/E 6000) ===\n\n");
  flex::bench::ExperimentHarness harness;

  // Reference: LDPC-in-SSD (no pool at all).
  const auto reference = harness.run(flex::trace::Workload::kWeb1,
                                     flex::ssd::Scheme::kLdpcInSsd, 6000,
                                     requests);

  const double raw_pages = static_cast<double>(
      flex::bench::ExperimentHarness::drive_config(
          flex::ssd::Scheme::kFlexLevel, 6000)
          .ftl.spec.total_pages());

  TablePrinter table({"pool (% of capacity)", "norm response", "pool used",
                      "migrations", "capacity loss (worst case)"});
  for (const double share : {0.005, 0.02, 0.08, 0.25}) {
    const auto pool_pages = static_cast<std::uint64_t>(raw_pages * share);
    const auto results =
        harness.run(flex::trace::Workload::kWeb1,
                    flex::ssd::Scheme::kFlexLevel, 6000, requests,
                    flex::ssd::AgeModel::kStaticPerLba, pool_pages);
    // Worst-case capacity loss: pool share x the 25% density loss of
    // reduced pages.
    table.add_row(
        {TablePrinter::num(share * 100.0, 2),
         TablePrinter::num(results.all_response.mean() /
                               reference.all_response.mean(),
                           3),
         std::to_string(results.pool_pages) + "/" +
             std::to_string(pool_pages),
         std::to_string(results.migrations_to_reduced),
         TablePrinter::percent(share * 0.25)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The paper's 25%% pool bounds capacity loss at ~6%% while "
              "capturing the hot soft-read set; small pools thrash or leave "
              "hot data un-migrated, trading speed for capacity.\n");
  return 0;
}
