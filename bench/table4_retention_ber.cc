// Reproduces paper Table 4: retention-time BER of the baseline MLC cell and
// the three NUNMA reduced-state configurations across P/E cycles and
// storage time. Prints measured (analytic model, cross-checked by the
// Monte-Carlo engine in tests) next to the paper's reported values.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "flexlevel/nunma.h"
#include "flexlevel/reduce_mapper.h"
#include "nand/level_config.h"
#include "reliability/ber_model.h"

namespace {

using flex::TablePrinter;
using flex::flexlevel::NunmaScheme;

// Paper Table 4, indexed [scheme][pe][time]; schemes: baseline, NUNMA 1-3.
const std::map<std::string, std::map<int, std::vector<double>>> kPaper = {
    {"baseline",
     {{2000, {0.000638, 0.000715, 0.00103, 0.00184}},
      {3000, {0.00146, 0.00169, 0.00260, 0.00459}},
      {4000, {0.00229, 0.00284, 0.00456, 0.00778}},
      {5000, {0.00359, 0.00457, 0.00699, 0.0120}},
      {6000, {0.00484, 0.00613, 0.00961, 0.0161}}}},
    {"NUNMA 1",
     {{2000, {0.000370, 0.000453, 0.000827, 0.00149}},
      {3000, {0.000677, 0.000860, 0.00143, 0.00249}},
      {4000, {0.00117, 0.00149, 0.00240, 0.00402}},
      {5000, {0.00177, 0.00233, 0.00349, 0.00545}},
      {6000, {0.00218, 0.00288, 0.00446, 0.00672}}}},
    {"NUNMA 2",
     {{2000, {0.000167, 0.000173, 0.000243, 0.000330}},
      {3000, {0.000343, 0.000367, 0.000570, 0.000807}},
      {4000, {0.000443, 0.000633, 0.000820, 0.00150}},
      {5000, {0.000690, 0.000853, 0.00123, 0.00227}},
      {6000, {0.00100, 0.00131, 0.00192, 0.00324}}}},
    {"NUNMA 3",
     {{2000, {0.000120, 0.000133, 0.000167, 0.000181}},
      {3000, {0.000237, 0.000257, 0.000293, 0.000390}},
      {4000, {0.000327, 0.000343, 0.000457, 0.000633}},
      {5000, {0.000460, 0.000540, 0.000713, 0.00109}},
      {6000, {0.000623, 0.000627, 0.000973, 0.00151}}}},
};

}  // namespace

int main() {
  std::printf("=== Table 4: retention-time BER (measured vs paper) ===\n\n");

  flex::Rng rng(0x7AB4);
  const flex::reliability::BerEngine::Config mc{
      .wordlines = 32, .bitlines = 128, .rounds = 1, .coupling = {}};
  const flex::reliability::RetentionModel retention;
  const flex::reliability::GrayMapper gray;
  const flex::flexlevel::ReduceCodeMapper reduce;

  struct Scheme {
    std::string name;
    flex::reliability::BerModel model;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"baseline",
                     {flex::nand::LevelConfig::baseline_mlc(), gray,
                      retention, mc, rng}});
  for (const auto s : flex::flexlevel::kNunmaSchemes) {
    schemes.push_back({flex::flexlevel::nunma_name(s),
                       {flex::flexlevel::nunma_config(s), reduce, retention,
                        mc, rng}});
  }

  const std::vector<std::pair<std::string, double>> ages = {
      {"1 day", flex::kDay},
      {"2 days", 2 * flex::kDay},
      {"1 week", flex::kWeek},
      {"1 month", flex::kMonth}};

  TablePrinter table({"P/E", "scheme", "1 day", "2 days", "1 week", "1 month",
                      "paper(1m)"});
  for (const int pe : {2000, 3000, 4000, 5000, 6000}) {
    for (const auto& scheme : schemes) {
      std::vector<std::string> row = {std::to_string(pe), scheme.name};
      for (const auto& [label, age] : ages) {
        row.push_back(TablePrinter::num(scheme.model.retention_ber(pe, age)));
      }
      row.push_back(
          TablePrinter::num(kPaper.at(scheme.name).at(pe).back()));
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline reductions (paper: ~2x / ~5x / ~9x on average).
  std::printf("Average retention-BER reduction vs baseline:\n");
  for (std::size_t s = 1; s < schemes.size(); ++s) {
    double ratio_sum = 0.0;
    int count = 0;
    for (const int pe : {2000, 3000, 4000, 5000, 6000}) {
      for (const auto& [label, age] : ages) {
        const double base = schemes[0].model.retention_ber(pe, age);
        const double ours = schemes[s].model.retention_ber(pe, age);
        if (ours > 0.0) {
          ratio_sum += base / ours;
          ++count;
        }
      }
    }
    const double paper_target = s == 1 ? 2.0 : (s == 2 ? 5.0 : 9.0);
    std::printf("  %-10s measured %.1fx   (paper: ~%.0fx)\n",
                schemes[s].name.c_str(), ratio_sum / count, paper_target);
  }
  return 0;
}
