// Microbenchmarks of the BCH baseline codec — the hard-decision ECC whose
// insufficiency at 2Xnm BERs motivates LDPC (paper §1).
#include <benchmark/benchmark.h>

#include "bch/bch.h"
#include "common/rng.h"

namespace {

using namespace flex;

void BM_BchEncode(benchmark::State& state) {
  const bch::BchCode code(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)));
  Rng rng(1);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(message));
  }
  state.counters["n"] = code.n();
  state.counters["t"] = code.t();
}
BENCHMARK(BM_BchEncode)->Args({10, 8})->Args({12, 16})
    ->Unit(benchmark::kMicrosecond);

void BM_BchDecode(benchmark::State& state) {
  const bch::BchCode code(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)));
  const int errors = static_cast<int>(state.range(2));
  Rng rng(2);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& b : message) b = static_cast<std::uint8_t>(rng.below(2));
  const auto clean = code.encode(message);
  auto noisy = clean;
  for (int e = 0; e < errors; ++e) {
    noisy[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(code.n())))] ^= 1;
  }
  for (auto _ : state) {
    auto work = noisy;
    benchmark::DoNotOptimize(code.decode(work));
  }
  state.counters["errors"] = errors;
}
BENCHMARK(BM_BchDecode)->Args({10, 8, 0})->Args({10, 8, 4})->Args({10, 8, 8})
    ->Args({12, 16, 16})->Unit(benchmark::kMicrosecond);

}  // namespace
